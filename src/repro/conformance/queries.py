"""Random conjunctive queries with known-by-construction classification labels.

Hierarchical queries are generated from a random *variable tree*: every node
is one variable and every atom's schema is the root-to-node path of the node
it is attached to.  For two variables ``X`` and ``Y`` this makes
``atoms(X)`` and ``atoms(Y)`` either disjoint (different branches) or nested
(ancestor/descendant), which is exactly Definition 1 — so the construction
*guarantees* the query is hierarchical, independently of what
:func:`repro.query.classes.is_hierarchical` computes.  When the head is
chosen upward-closed in the tree (a union of root-to-node paths), any
variable whose atom set strictly contains a free variable's atom set is an
ancestor of it and therefore free as well — guaranteeing q-hierarchical.

Non-hierarchical queries are produced by planting a cross-branch atom: take
a tree with two root branches that each contain a private atom, then add an
atom spanning one variable from each branch.  The two spanned variables now
share the planted atom while each retains a private one, so their atom sets
overlap without nesting — a guaranteed Definition 1 violation.

:func:`check_query_conformance` is the round-trip oracle: it asserts that
the classifier agrees with the construction labels, that the width measures
satisfy the paper's propositions (6, 7, 8, 17), that the parser round-trips
``parse(str(q)) == q``, and that the planner accepts exactly the supported
fragment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import UnsupportedQueryError
from repro.query.atom import Atom
from repro.query.classes import classify
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.core.planner import plan_query
from repro.widths.dynamic_width import dynamic_width
from repro.widths.static_width import static_width

HEAD_MODES = ("closed", "random", "full", "boolean")


@dataclass(frozen=True)
class LabeledQuery:
    """A generated query together with what its construction guarantees.

    ``hierarchical`` is exact (True or False by construction);
    ``q_hierarchical`` is ``True`` when the head was chosen upward-closed in
    the variable tree (guaranteed q-hierarchical) and ``None`` when the
    construction makes no promise either way.
    """

    query: ConjunctiveQuery
    hierarchical: bool
    q_hierarchical: Optional[bool]
    head_mode: str


class _TreeNode:
    """One variable of the generated variable tree."""

    __slots__ = ("variable", "children", "path")

    def __init__(self, variable: str, path: Tuple[str, ...]) -> None:
        self.variable = variable
        self.path = path  # root-to-node variables, inclusive
        self.children: List["_TreeNode"] = []


def _build_tree(
    rng: random.Random,
    counter: List[int],
    path: Tuple[str, ...],
    depth: int,
    max_depth: int,
    max_children: int,
) -> _TreeNode:
    variable = f"V{counter[0]}"
    counter[0] += 1
    node = _TreeNode(variable, path + (variable,))
    if depth < max_depth:
        for _ in range(rng.randint(0, max_children)):
            node.children.append(
                _build_tree(rng, counter, node.path, depth + 1, max_depth, max_children)
            )
    return node


def _collect(node: _TreeNode) -> List[_TreeNode]:
    nodes = [node]
    for child in node.children:
        nodes.extend(_collect(child))
    return nodes


def _attach_atoms(
    rng: random.Random, nodes: Sequence[_TreeNode], atom_probability: float
) -> List[Atom]:
    """One atom per leaf (mandatory) plus optional atoms at inner nodes.

    Leaf atoms guarantee that every variable occurs in at least one atom;
    schemas are shuffled so column order varies independently of the tree.
    """
    atoms: List[Atom] = []
    for node in nodes:
        is_leaf = not node.children
        if is_leaf or rng.random() < atom_probability:
            schema = list(node.path)
            rng.shuffle(schema)
            atoms.append(Atom(f"R{len(atoms)}", tuple(schema)))
    return atoms


def _choose_head(
    rng: random.Random, roots: Sequence[_TreeNode], mode: str
) -> Tuple[str, ...]:
    all_nodes = [node for root in roots for node in _collect(root)]
    if mode == "boolean":
        return ()
    if mode == "full":
        return tuple(node.variable for node in all_nodes)
    if mode == "closed":
        # union of root-to-node paths: upward-closed in the tree
        chosen: List[str] = []
        seen = set()
        for node in all_nodes:
            if rng.random() < 0.5:
                for variable in node.path:
                    if variable not in seen:
                        seen.add(variable)
                        chosen.append(variable)
        return tuple(chosen)
    # mode == "random": arbitrary subset, no classification promise
    return tuple(
        node.variable for node in all_nodes if rng.random() < 0.5
    )


def random_labeled_query(
    rng: random.Random,
    max_depth: int = 3,
    max_children: int = 2,
    max_roots: int = 2,
    atom_probability: float = 0.4,
    head_mode: Optional[str] = None,
) -> LabeledQuery:
    """Generate a random hierarchical query with construction labels.

    ``max_roots > 1`` occasionally yields disconnected queries (Cartesian
    products of hierarchical components), which the engine must also
    support.  ``head_mode`` picks the head-selection strategy (one of
    :data:`HEAD_MODES`); ``None`` samples one at random.
    """
    mode = head_mode or rng.choice(HEAD_MODES)
    counter = [0]
    roots = [
        _build_tree(rng, counter, (), 1, max_depth, max_children)
        for _ in range(rng.randint(1, max_roots))
    ]
    nodes = [node for root in roots for node in _collect(root)]
    atoms = _attach_atoms(rng, nodes, atom_probability)
    head = _choose_head(rng, roots, mode)
    query = ConjunctiveQuery(head, atoms, name="Q")
    return LabeledQuery(
        query=query,
        hierarchical=True,
        q_hierarchical=True if mode == "closed" else None,
        head_mode=mode,
    )


def random_nonhierarchical_query(
    rng: random.Random,
    max_depth: int = 2,
    max_children: int = 2,
) -> LabeledQuery:
    """Generate a query that is guaranteed *not* to be hierarchical.

    Builds two independent branches, each carrying a private leaf atom, then
    plants one atom spanning a variable of each branch: the spanned
    variables' atom sets overlap (the planted atom) without nesting (each
    keeps its private atom) — violating Definition 1.
    """
    counter = [0]
    left = _build_tree(rng, counter, (), 1, max_depth, max_children)
    right = _build_tree(rng, counter, (), 1, max_depth, max_children)
    nodes = _collect(left) + _collect(right)
    atoms = _attach_atoms(rng, nodes, atom_probability=0.3)
    bridge_left = rng.choice(_collect(left)).variable
    bridge_right = rng.choice(_collect(right)).variable
    atoms.append(Atom(f"R{len(atoms)}", (bridge_left, bridge_right)))
    head = tuple(node.variable for node in nodes if rng.random() < 0.5)
    query = ConjunctiveQuery(head, atoms, name="Q")
    return LabeledQuery(
        query=query, hierarchical=False, q_hierarchical=False, head_mode="random"
    )


def check_query_conformance(labeled: LabeledQuery) -> None:
    """Assert classifier/widths/parser/planner agreement for one query.

    This is the query-layer half of the differential oracle: the generator
    *knows* the labels, so any disagreement is a bug in the classification
    or width code (or in the generator itself — either way worth failing).
    Raises :class:`AssertionError` with a descriptive message.
    """
    query = labeled.query
    classification = classify(query)

    # construction labels
    assert classification.hierarchical == labeled.hierarchical, (
        f"classifier says hierarchical={classification.hierarchical} but the "
        f"construction guarantees {labeled.hierarchical} for {query}"
    )
    if labeled.q_hierarchical is not None:
        assert classification.q_hierarchical == labeled.q_hierarchical, (
            f"classifier says q-hierarchical={classification.q_hierarchical} "
            f"but the construction guarantees {labeled.q_hierarchical} for {query}"
        )

    # parser round-trip (satellite: parse(str(query)) == query)
    reparsed = parse_query(str(query))
    assert reparsed == query, f"parser round-trip changed the query: {query} -> {reparsed}"

    # width propositions of the paper
    if classification.hierarchical:
        w = static_width(query)
        d = dynamic_width(query)
        assert w >= 1.0, f"static width {w} < 1 for {query}"
        assert d == classification.delta_index, (
            f"Proposition 8 violated for {query}: dynamic width {d} != "
            f"delta index {classification.delta_index}"
        )
        assert d in (w - 1, w), (
            f"Proposition 17 violated for {query}: delta {d} not in "
            f"{{w-1, w}} for w = {w}"
        )
        assert classification.q_hierarchical == (classification.delta_index == 0), (
            f"Proposition 6 violated for {query}: q-hierarchical="
            f"{classification.q_hierarchical}, delta index {classification.delta_index}"
        )
        if classification.free_connex:
            assert classification.delta_index <= 1, (
                f"Proposition 7 violated for {query}: free-connex hierarchical "
                f"with delta index {classification.delta_index}"
            )

    # planner gate: accepts exactly the hierarchical fragment
    try:
        plan_query(query)
        planned = True
    except UnsupportedQueryError:
        planned = False
    assert planned == classification.hierarchical, (
        f"planner {'accepted' if planned else 'rejected'} {query} but "
        f"hierarchical={classification.hierarchical}"
    )
