"""The differential runner: one workload, every engine, diff everything.

A :class:`ConformanceCase` is a fully serializable workload — query text,
database contents, update sequence, ε grid, checkpoint count.  Running a
case executes the same workload through:

* :class:`~repro.core.api.HierarchicalEngine` at every ε of the grid, once
  ingesting updates one tuple at a time and once in consolidated batches;
* :class:`~repro.baselines.naive.NaiveRecomputeEngine` (the ground-truth
  oracle), both paths;
* :class:`~repro.baselines.first_order_ivm.FirstOrderIVMEngine` and
  :class:`~repro.baselines.full_materialization.FullMaterializationEngine`;
* :class:`~repro.baselines.free_connex.FreeConnexEngine` when the query is
  free-connex;
* a :class:`~repro.core.api.HierarchicalEngine` running entirely on the
  ``dict`` relation-storage backend (database, partitions, and views all
  dict-backed), so the two storage layouts are diffed against each other
  on every fuzzed workload;
* :class:`~repro.sharding.ShardedEngine` at shard counts
  :data:`SHARD_COUNTS` when the query is shardable, alternating sequential
  and batched ingestion — sharded execution must be indistinguishable from
  the naive oracle exactly like a single engine.

At every checkpoint the runner diffs each engine's full result against the
oracle, diffs the *result delta* since the previous checkpoint (so a
mismatch is localized to the segment that introduced it), checks the
enumeration invariants of the engine (deterministic order across passes, no
duplicate tuples, strictly positive multiplicities), probes the engine's
internal structures via
:meth:`~repro.core.api.HierarchicalEngine.check_invariants`, and exercises
snapshot isolation: a fresh ``engine.snapshot()`` must match the oracle at
the current version, and the snapshot *held since the previous checkpoint*
must still match the oracle's capture-time result even though the engine
has since ingested another segment (rebalances included).  Shrunk repro
JSON files therefore replay snapshot reads exactly like live reads.

Every checkpoint also diffs **aggregate answers**: a generic spec set
derived from the query head (:func:`aggregate_specs_for` — counting grouped
by the first head variable, a global sum and a grouped max over the last
head position) plus any case-specific ``(ring, value, group_by)`` triples
(``ConformanceCase.aggregates``, fed by the scenario matrix) is registered
on every dynamic engine, so ``engine.aggregate()`` answers from maintained
ring state — across segments, the retune, and the reshard — and must equal
the one true fold (:func:`repro.rings.spec.fold_result`) over the oracle's
result.  The enumerate-and-fold path (``maintained=False``), the fresh
snapshot's frozen aggregate, and the *held* snapshot's aggregate after
further segments are diffed the same way.

At one case-deterministic checkpoint, every dynamic IVM engine (single and
sharded) additionally **retunes** to a different ε mid-case
(:meth:`~repro.core.api.HierarchicalEngine.retune`) — so every fuzzed
workload also exercises live ε switching, including the interaction with
snapshots held across the retune.  At a second case-deterministic
checkpoint every sharded runner **reshards** to a different count from
:data:`SHARD_COUNTS` (:meth:`~repro.sharding.ShardedEngine.reshard`), so
elastic split/merge is diffed against the oracle on every fuzzed workload
too, snapshots held across the swap included.

Non-hierarchical cases are differential too: the planner must *reject* the
query (the fragment gate is part of the contract), after which the
baselines — which support arbitrary conjunctive queries — are diffed
against each other with the naive engine as oracle.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.first_order_ivm import FirstOrderIVMEngine
from repro.baselines.free_connex import FreeConnexEngine
from repro.baselines.full_materialization import FullMaterializationEngine
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.api import HierarchicalEngine
from repro.core.planner import is_shardable
from repro.data.database import Database
from repro.data.relation import storage_backend
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateStream
from repro.durability import (
    CrashPointInjector,
    DurabilityConfig,
    SimulatedCrashError,
    injected,
    recover_engine,
)
from repro.durability.checkpoint import find_checkpoints
from repro.exceptions import (
    DurabilityError,
    RejectedUpdateError,
    ReproError,
    UnsupportedQueryError,
)
from repro.query.classes import classify
from repro.query.hypergraph import is_free_connex
from repro.query.parser import parse_query
from repro.rings.spec import AggregateSpec, answer_map, fold_result
from repro.sharding import ShardedEngine

DEFAULT_EPSILONS: Tuple[float, ...] = (0.0, 0.5, 1.0)

# Candidate targets for the mid-case retune rehearsal: one checkpoint per
# differential run switches every dynamic IVM engine's live ε (chosen
# case-deterministically from this grid), so retuning is exercised against
# the oracle on every fuzzed workload, not only in the dedicated tests.
RETUNE_EPSILONS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

# Every differential run exercises the sharded engine at these shard
# counts (sequential and batched ingestion alternate so both dispatch
# paths stay covered): 1 — the degenerate deployment must match exactly;
# 2 and 4 — genuine splits, including shards that receive no data; 7 —
# coprime with the hash mixing and larger than most tiny test databases,
# so empty shards and single-tuple shards both occur.
SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 7)

ResultDict = Dict[ValueTuple, int]


@dataclass
class ConformanceCase:
    """A self-contained differential workload (JSON-serializable)."""

    query: str
    relations: Dict[str, Tuple[Tuple[str, ...], List[Tuple[ValueTuple, int]]]]
    updates: List[Tuple[str, ValueTuple, int]]
    epsilons: Tuple[float, ...] = DEFAULT_EPSILONS
    checkpoints: int = 4
    #: Case-specific ``(ring name, value selector, group_by)`` triples —
    #: diffed at every checkpoint next to the generic spec set.  Scenario
    #: cases carry the scenario's natural aggregates here.
    aggregates: Tuple[Tuple[str, object, Tuple[str, ...]], ...] = ()

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        query: str,
        database: Database,
        stream: UpdateStream,
        epsilons: Sequence[float] = DEFAULT_EPSILONS,
        checkpoints: int = 4,
        aggregates: Sequence[Tuple[str, object, Sequence[str]]] = (),
    ) -> "ConformanceCase":
        """Capture a database + stream into a replayable case."""
        relations = {
            relation.name: (
                tuple(relation.schema),
                [(tup, mult) for tup, mult in relation.items()],
            )
            for relation in database
        }
        updates = [(u.relation, u.tuple, u.multiplicity) for u in stream]
        return cls(
            query=query,
            relations=relations,
            updates=updates,
            epsilons=tuple(epsilons),
            checkpoints=checkpoints,
            aggregates=tuple(
                (ring, value, tuple(group_by)) for ring, value, group_by in aggregates
            ),
        )

    def database(self) -> Database:
        """Materialize a fresh database from the captured contents."""
        db = Database()
        for name, (schema, rows) in self.relations.items():
            relation = db.create_relation(name, schema)
            for tup, mult in rows:
                relation.apply_delta(tuple(tup), mult)
        return db

    def update_objects(self) -> List[Update]:
        return [Update(rel, tuple(tup), mult) for rel, tup, mult in self.updates]

    def segments(self) -> List[List[Update]]:
        """Split the update sequence into ``checkpoints`` contiguous segments."""
        updates = self.update_objects()
        count = max(1, self.checkpoints)
        size = max(1, (len(updates) + count - 1) // count) if updates else 1
        return [updates[i : i + size] for i in range(0, len(updates), size)] or [[]]

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "query": self.query,
            "relations": {
                name: {"schema": list(schema), "rows": [[list(t), m] for t, m in rows]}
                for name, (schema, rows) in self.relations.items()
            },
            "updates": [[rel, list(tup), mult] for rel, tup, mult in self.updates],
            "epsilons": list(self.epsilons),
            "checkpoints": self.checkpoints,
        }
        if self.aggregates:
            # omitted when empty so the digests (and with them the
            # case-deterministic retune/reshard/crash choices) of every
            # pre-existing repro file stay exactly what they were
            payload["aggregates"] = [
                [ring, list(value) if isinstance(value, tuple) else value, list(group_by)]
                for ring, value, group_by in self.aggregates
            ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ConformanceCase":
        raw = json.loads(text)
        return cls(
            query=raw["query"],
            relations={
                name: (
                    tuple(entry["schema"]),
                    [(tuple(t), m) for t, m in entry["rows"]],
                )
                for name, entry in raw["relations"].items()
            },
            updates=[(rel, tuple(tup), mult) for rel, tup, mult in raw["updates"]],
            epsilons=tuple(raw["epsilons"]),
            checkpoints=raw["checkpoints"],
            aggregates=tuple(
                (ring, tuple(value) if isinstance(value, list) else value, tuple(group_by))
                for ring, value, group_by in raw.get("aggregates") or ()
            ),
        )


@dataclass(frozen=True)
class Mismatch:
    """One observed divergence between an engine and the oracle."""

    engine: str
    checkpoint: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] engine {self.engine!r} at checkpoint "
            f"{self.checkpoint}: {self.detail}"
        )


class ConformanceError(ReproError):
    """Raised when a differential run diverges; carries the mismatches."""

    def __init__(self, mismatches: Sequence[Mismatch]) -> None:
        super().__init__(
            "; ".join(str(m) for m in mismatches) or "conformance failure"
        )
        self.mismatches = tuple(mismatches)


@dataclass
class ConformanceReport:
    """Outcome of one differential run."""

    query: str
    supported: bool
    engines: Tuple[str, ...]
    checkpoints_run: int
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_if_failed(self) -> None:
        if self.mismatches:
            raise ConformanceError(self.mismatches)


class _Runner:
    """One engine under differential observation."""

    def __init__(self, name: str, engine, batched: bool) -> None:
        self.name = name
        self.engine = engine
        self.batched = batched
        self.previous: ResultDict = {}
        # The snapshot captured at the previous checkpoint and the oracle's
        # result at that moment: after the next segment mutates the engine,
        # the held snapshot must still enumerate exactly this result.
        self.held_snapshot = None
        self.held_truth: ResultDict = {}
        # The first aggregate spec's oracle answers at capture time: the
        # held snapshot's frozen aggregate must keep answering exactly this.
        self.held_agg_truth: Dict = {}

    def ingest(self, segment: List[Update]) -> None:
        if self.batched:
            self.engine.apply_batch(segment)
        else:
            for update in segment:
                self.engine.apply(update)

    def result(self) -> ResultDict:
        return dict(self.engine.result())


def _diff(expected: ResultDict, actual: ResultDict, limit: int = 5) -> Optional[str]:
    """Human-readable diff of two result dictionaries (None when equal)."""
    if expected == actual:
        return None
    problems: List[str] = []
    for tup in expected:
        if tup not in actual:
            problems.append(f"missing {tup!r} (expected multiplicity {expected[tup]})")
        elif actual[tup] != expected[tup]:
            problems.append(
                f"{tup!r} has multiplicity {actual[tup]}, expected {expected[tup]}"
            )
        if len(problems) >= limit:
            break
    if len(problems) < limit:
        for tup in actual:
            if tup not in expected:
                problems.append(f"extra {tup!r} (multiplicity {actual[tup]})")
            if len(problems) >= limit:
                break
    return "; ".join(problems) or "results differ"


def _delta(previous: ResultDict, current: ResultDict) -> ResultDict:
    """The per-tuple multiplicity change between two checkpoints."""
    delta: ResultDict = {}
    for tup, mult in current.items():
        change = mult - previous.get(tup, 0)
        if change:
            delta[tup] = change
    for tup, mult in previous.items():
        if tup not in current:
            delta[tup] = -mult
    return delta


def aggregate_specs_for(
    head: Sequence[str],
    extras: Sequence[Tuple[str, object, Sequence[str]]] = (),
) -> List[AggregateSpec]:
    """The aggregate specs a differential run diffs for a query head.

    The generic set — counting grouped by the first head variable, a
    global sum over the last head position, and a max over the last head
    position grouped by the first — covers the three ring families with
    distinct retraction behaviour (support-only, exact cancellation,
    re-derivation) on any head; both the fuzzer's datagen and the
    workload scenarios use integer domains, so sum/max over a head column
    are always well-typed.  ``extras`` appends case-specific
    ``(ring, value, group_by)`` triples; duplicates collapse by spec key.
    """
    head = tuple(head)
    specs: List[AggregateSpec] = []
    if head:
        last = len(head) - 1
        specs.append(AggregateSpec("counting", None, (head[0],)))
        specs.append(AggregateSpec("sum", last, ()))
        specs.append(AggregateSpec("max", last, (head[0],)))
    else:
        specs.append(AggregateSpec("counting"))
    for ring, value, group_by in extras:
        specs.append(AggregateSpec(ring, value, tuple(group_by)))
    unique: Dict[Tuple, AggregateSpec] = {}
    for spec in specs:
        unique.setdefault(spec.key(), spec)
    return list(unique.values())


def _diff_answers(expected: Dict, actual: Dict, limit: int = 5) -> Optional[str]:
    """Human-readable diff of two ``{group: answer}`` maps (None when equal)."""
    if expected == actual:
        return None
    problems: List[str] = []
    for group in expected:
        if group not in actual:
            problems.append(f"missing group {group!r} (expected {expected[group]!r})")
        elif actual[group] != expected[group]:
            problems.append(
                f"group {group!r} answered {actual[group]!r}, "
                f"expected {expected[group]!r}"
            )
        if len(problems) >= limit:
            break
    if len(problems) < limit:
        for group in actual:
            if group not in expected:
                problems.append(f"extra group {group!r} (answer {actual[group]!r})")
            if len(problems) >= limit:
                break
    return "; ".join(problems) or "aggregate answers differ"


def _check_enumeration(
    engine: Union[HierarchicalEngine, ShardedEngine]
) -> Optional[str]:
    """Enumeration-order invariants: deterministic, duplicate-free, positive."""
    first = list(engine.enumerate())
    second = list(engine.enumerate())
    if first != second:
        return "two enumeration passes yielded different sequences"
    seen = set()
    for tup, mult in first:
        if tup in seen:
            return f"tuple {tup!r} enumerated more than once"
        seen.add(tup)
        if mult <= 0:
            return f"tuple {tup!r} enumerated with non-positive multiplicity {mult}"
    if engine.count_distinct() != len(first):
        return "count_distinct disagrees with the enumerated sequence"
    return None


def _build_runners(
    case: ConformanceCase, supported: bool, free_connex: bool
) -> Tuple[List[_Runner], NaiveRecomputeEngine]:
    database = case.database()
    oracle = NaiveRecomputeEngine(case.query)
    oracle.load(database)
    runners: List[_Runner] = [
        _Runner("naive-batch", NaiveRecomputeEngine(case.query).load(database), True),
        _Runner("first-order", FirstOrderIVMEngine(case.query).load(database), False),
        _Runner(
            "first-order-batch", FirstOrderIVMEngine(case.query).load(database), True
        ),
        _Runner(
            "full-materialization",
            FullMaterializationEngine(case.query).load(database),
            False,
        ),
    ]
    if supported:
        for epsilon in case.epsilons:
            runners.append(
                _Runner(
                    f"ivm(eps={epsilon})",
                    HierarchicalEngine(case.query, epsilon=epsilon).load(database),
                    False,
                )
            )
            runners.append(
                _Runner(
                    f"ivm-batch(eps={epsilon})",
                    HierarchicalEngine(case.query, epsilon=epsilon).load(database),
                    True,
                )
            )
    if supported and free_connex:
        runners.append(
            _Runner("free-connex", FreeConnexEngine(case.query).load(database), False)
        )
    if supported and case.epsilons:
        # Storage-backend differential: one engine runs entirely on the
        # dict backend (database built inside the context so every
        # relation, partition, and view it derives stays dict-backed) and
        # must be indistinguishable from the columnar-backed runners.
        epsilon = case.epsilons[len(case.epsilons) // 2]
        with storage_backend("dict"):
            runners.append(
                _Runner(
                    f"ivm-dict-storage(eps={epsilon})",
                    HierarchicalEngine(case.query, epsilon=epsilon).load(
                        case.database()
                    ),
                    False,
                )
            )
    if supported and is_shardable(case.query):
        epsilon = case.epsilons[len(case.epsilons) // 2] if case.epsilons else 0.5
        for index, shards in enumerate(SHARD_COUNTS):
            runners.append(
                _Runner(
                    f"sharded(n={shards},eps={epsilon})",
                    ShardedEngine(
                        case.query,
                        shards=shards,
                        epsilon=epsilon,
                        executor="serial",
                    ).load(database),
                    index % 2 == 1,
                )
            )
    return runners, oracle


def run_case(case: ConformanceCase, max_mismatches: int = 20) -> ConformanceReport:
    """Execute one differential run and report every divergence found."""
    query = parse_query(case.query)
    classification = classify(query)
    supported = classification.hierarchical
    mismatches: List[Mismatch] = []

    # fragment gate: the planner must accept exactly the hierarchical fragment
    gate_ok = True
    try:
        HierarchicalEngine(case.query)
    except UnsupportedQueryError:
        gate_ok = False
    if gate_ok != supported:
        mismatches.append(
            Mismatch(
                engine="planner",
                checkpoint=-1,
                kind="fragment-gate",
                detail=(
                    f"planner {'accepted' if gate_ok else 'rejected'} the query but "
                    f"hierarchical={supported}"
                ),
            )
        )
        return ConformanceReport(
            query=case.query,
            supported=supported,
            engines=(),
            checkpoints_run=0,
            mismatches=mismatches,
        )

    # shard gate: the sharded planner must accept exactly the shardable
    # sub-fragment — hierarchical AND some variable occurs in every atom
    shard_gate_ok = True
    try:
        ShardedEngine(case.query, shards=2)
    except UnsupportedQueryError:
        shard_gate_ok = False
    shardable = supported and is_shardable(case.query)
    if shard_gate_ok != shardable:
        mismatches.append(
            Mismatch(
                engine="shard-planner",
                checkpoint=-1,
                kind="shard-gate",
                detail=(
                    f"shard gate {'accepted' if shard_gate_ok else 'rejected'} "
                    f"the query but shardable={shardable}"
                ),
            )
        )
        return ConformanceReport(
            query=case.query,
            supported=supported,
            engines=(),
            checkpoints_run=0,
            mismatches=mismatches,
        )

    runners, oracle = _build_runners(case, supported, is_free_connex(query))
    segments = case.segments()
    head_vars = tuple(query.head)
    # Aggregate differential: the generic spec set plus the case's own
    # triples, answered from maintained ring state on every dynamic engine
    # at every checkpoint and diffed against the fold over the oracle.
    agg_specs = aggregate_specs_for(head_vars, case.aggregates) if supported else []

    # Retune rehearsal: at one pseudo-random (but case-deterministic, so
    # seeds and shrunk repros replay identically) checkpoint, every dynamic
    # IVM engine switches to a different ε mid-case.  All the existing
    # probes then apply to the retuned engines — result and delta diffs
    # against the oracle, enumeration invariants, the deep invariant probe,
    # and crucially snapshot isolation: the snapshot held since the
    # previous checkpoint must survive the retune's strict repartition and
    # view recompute untouched.
    digest = zlib.crc32(case.to_json().encode("utf-8"))
    retune_checkpoint = 1 + digest % len(segments) if segments else None

    # Reshard rehearsal: at a second case-deterministic checkpoint (kept
    # distinct from the retune checkpoint whenever the case has more than
    # one segment), every sharded runner elastically reshards to a
    # different count from SHARD_COUNTS.  All the probes below then apply
    # to the post-swap fleet — result and delta diffs against the oracle,
    # enumeration invariants, cross-shard placement invariants, and
    # snapshot isolation: the snapshot held since the previous checkpoint
    # stays pinned on the *retired* fleet and must still enumerate its
    # capture-time oracle result.
    reshard_checkpoint = None
    if segments:
        reshard_checkpoint = 1 + (digest // 7) % len(segments)
        if reshard_checkpoint == retune_checkpoint and len(segments) > 1:
            reshard_checkpoint = 1 + (reshard_checkpoint % len(segments))

    oracle_previous: ResultDict = {}
    checkpoint = 0
    # checkpoint 0 observes the preprocessing output, before any update
    for index in range(len(segments) + 1):
        if index > 0:
            segment = segments[index - 1]
            oracle.apply_stream(segment)
            for runner in runners:
                runner.ingest(segment)
            if index == retune_checkpoint:
                for offset, runner in enumerate(runners):
                    if isinstance(runner.engine, (HierarchicalEngine, ShardedEngine)):
                        runner.engine.retune(
                            RETUNE_EPSILONS[(digest + offset) % len(RETUNE_EPSILONS)]
                        )
            if index == reshard_checkpoint:
                for offset, runner in enumerate(runners):
                    engine = runner.engine
                    if isinstance(engine, ShardedEngine):
                        target = SHARD_COUNTS[(digest + offset) % len(SHARD_COUNTS)]
                        if target == engine.shards:
                            target = SHARD_COUNTS[
                                (digest + offset + 1) % len(SHARD_COUNTS)
                            ]
                        engine.reshard(target)
        truth = dict(oracle.result())
        truth_delta = _delta(oracle_previous, truth)
        agg_truth = [
            answer_map(spec, fold_result(spec, head_vars, truth.items()))
            for spec in agg_specs
        ]
        for runner in runners:
            observed = runner.result()
            diff = _diff(truth, observed)
            if diff is not None:
                mismatches.append(
                    Mismatch(runner.name, checkpoint, "result", diff)
                )
            # Diff the per-segment result delta too, but only when the full
            # result still matches — otherwise the 'result' mismatch above
            # already covers it and a duplicate would burn max_mismatches.
            if diff is None:
                observed_delta = _delta(runner.previous, observed)
                if observed_delta != truth_delta:
                    delta_diff = _diff(truth_delta, observed_delta)
                    mismatches.append(
                        Mismatch(
                            runner.name,
                            checkpoint,
                            "delta",
                            f"result delta diverges: {delta_diff}",
                        )
                    )
            runner.previous = observed
            engine = runner.engine
            if isinstance(engine, (HierarchicalEngine, ShardedEngine)):
                enumeration_problem = _check_enumeration(engine)
                if enumeration_problem is not None:
                    mismatches.append(
                        Mismatch(runner.name, checkpoint, "enumeration", enumeration_problem)
                    )
                try:
                    engine.check_invariants()
                except ReproError as exc:
                    mismatches.append(
                        Mismatch(runner.name, checkpoint, "invariant", str(exc))
                    )
                # Aggregate differential: every spec's maintained answer
                # (registered on first use, then carried by ring-delta
                # maintenance through segments, the retune, and the
                # reshard) must equal the fold over the oracle's result;
                # the enumerate-and-fold path is diffed once per
                # checkpoint on the first spec.
                for spec, expected_answers in zip(agg_specs, agg_truth):
                    answer_diff = _diff_answers(expected_answers, engine.aggregate(spec))
                    if answer_diff is not None:
                        mismatches.append(
                            Mismatch(
                                runner.name,
                                checkpoint,
                                "aggregate",
                                f"{spec.describe()}: {answer_diff}",
                            )
                        )
                if agg_specs:
                    fold_diff = _diff_answers(
                        agg_truth[0], engine.aggregate(agg_specs[0], maintained=False)
                    )
                    if fold_diff is not None:
                        mismatches.append(
                            Mismatch(
                                runner.name,
                                checkpoint,
                                "aggregate-fold",
                                f"{agg_specs[0].describe()}: {fold_diff}",
                            )
                        )
                # Snapshot isolation: the snapshot held since the previous
                # checkpoint must still enumerate the oracle's result *at
                # capture time*, even though this checkpoint's segment has
                # mutated the live engine underneath it; then capture a new
                # snapshot and diff it against the oracle right now.
                if runner.held_snapshot is not None:
                    stale_diff = _diff(
                        runner.held_truth, dict(runner.held_snapshot.result())
                    )
                    if stale_diff is not None:
                        mismatches.append(
                            Mismatch(
                                runner.name,
                                checkpoint,
                                "snapshot-isolation",
                                f"held snapshot drifted from its capture-time "
                                f"oracle result: {stale_diff}",
                            )
                        )
                    if agg_specs:
                        stale_agg_diff = _diff_answers(
                            runner.held_agg_truth,
                            runner.held_snapshot.aggregate(agg_specs[0]),
                        )
                        if stale_agg_diff is not None:
                            mismatches.append(
                                Mismatch(
                                    runner.name,
                                    checkpoint,
                                    "aggregate-isolation",
                                    f"held snapshot's {agg_specs[0].describe()} "
                                    f"aggregate drifted: {stale_agg_diff}",
                                )
                            )
                    runner.held_snapshot.close()
                snapshot = engine.snapshot()
                snapshot_diff = _diff(truth, dict(snapshot.result()))
                if snapshot_diff is not None:
                    mismatches.append(
                        Mismatch(
                            runner.name, checkpoint, "snapshot", snapshot_diff
                        )
                    )
                if agg_specs:
                    snap_agg_diff = _diff_answers(
                        agg_truth[0], snapshot.aggregate(agg_specs[0])
                    )
                    if snap_agg_diff is not None:
                        mismatches.append(
                            Mismatch(
                                runner.name,
                                checkpoint,
                                "aggregate-snapshot",
                                f"{agg_specs[0].describe()}: {snap_agg_diff}",
                            )
                        )
                runner.held_snapshot = snapshot
                runner.held_truth = truth
                runner.held_agg_truth = agg_truth[0] if agg_specs else {}
            if len(mismatches) >= max_mismatches:
                return ConformanceReport(
                    query=case.query,
                    supported=supported,
                    engines=tuple(r.name for r in runners),
                    checkpoints_run=checkpoint + 1,
                    mismatches=mismatches,
                )
        oracle_previous = truth
        checkpoint += 1

    for runner in runners:
        if runner.held_snapshot is not None:
            runner.held_snapshot.close()
    return ConformanceReport(
        query=case.query,
        supported=supported,
        engines=tuple(r.name for r in runners),
        checkpoints_run=checkpoint,
        mismatches=mismatches,
    )


def case_failure(case: ConformanceCase) -> Optional[Mismatch]:
    """Run a case and normalize any failure mode into a single mismatch.

    A crash anywhere in the run (a rejected update, an invariant violation
    that escapes, an arbitrary exception in maintenance code) counts as a
    conformance failure exactly like a result divergence — the shrinker
    only needs *a* failure signal, not a classified one.
    """
    try:
        report = run_case(case)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return Mismatch(
            engine="(run)", checkpoint=-1, kind="crash", detail=f"{type(exc).__name__}: {exc}"
        )
    if report.mismatches:
        return report.mismatches[0]
    return None


# ---------------------------------------------------------------------------
# kill-mid-batch: differential crash recovery
# ---------------------------------------------------------------------------
#
# The durable engine's claim is stronger than "no data loss": after a crash
# at *any* instrumented point (WAL append, the torn half-write window, the
# fsync gap, checkpoint write/fsync/rename, checkpoint cleanup), recovering
# and replaying the not-yet-durable remainder of the workload must be
# indistinguishable — result, version, AND enumeration order — from an
# engine that never crashed.  ``run_crash_recovery_case`` turns one
# ConformanceCase into that experiment: a case-deterministic crash point is
# armed, the workload runs until the simulated kill, the engine is recovered
# from disk, the remaining events (chosen by durable version, exactly like a
# client resuming from acknowledgements) are replayed, and the final state
# is diffed against the naive oracle and a never-crashed durable twin.


def _recovery_plan(
    case: ConformanceCase,
) -> Tuple[int, List[Tuple[str, object]], int, float, bool]:
    """Derive the deterministic crash experiment encoded by a case.

    Returns ``(digest, events, checkpoint_interval, epsilon, batched)``.
    Every *event* — one update, one consolidated segment batch, or the
    mid-case retune — ticks the durable version at most once, so the
    recovered engine's version identifies exactly which events still need
    replaying.  All knobs derive from the case's JSON digest, so a shrunk
    repro file replays the same crash without carrying extra state.
    """
    digest = zlib.crc32(case.to_json().encode("utf-8"))
    segments = case.segments()
    batched = bool(digest & 1)
    interval = 1 + digest % 5
    epsilon = case.epsilons[len(case.epsilons) // 2] if case.epsilons else 0.5
    retune_checkpoint = 1 + digest % len(segments) if segments else None
    target = RETUNE_EPSILONS[digest % len(RETUNE_EPSILONS)]
    events: List[Tuple[str, object]] = []
    for number, segment in enumerate(segments, start=1):
        if batched:
            events.append(("batch", segment))
        else:
            events.extend(("update", update) for update in segment)
        if number == retune_checkpoint:
            events.append(("retune", target))
    return digest, events, interval, epsilon, batched


def _apply_event(engine, event: Tuple[str, object]) -> bool:
    """Apply one plan event; a deterministically rejected event is skipped.

    Rejections (an over-delete the stream made invalid) depend only on the
    engine's state, which the crash run, the oracle run, and the post-
    recovery replay all share at the corresponding version — so "skipped"
    is itself replayed faithfully.  Returns whether the event was accepted.
    """
    kind, payload = event
    try:
        if kind == "update":
            engine.apply(payload)
        elif kind == "batch":
            engine.apply_batch(list(payload))
        else:
            engine.retune(payload)
    except RejectedUpdateError:
        return False
    return True


def count_crash_sites(case: ConformanceCase) -> int:
    """Number of crash-point hits in one clean durable run of ``case``.

    This is the size of the kill-anywhere sweep: arming the k-th hit for
    every ``1 <= k <= count_crash_sites(case)`` crashes the workload at
    every instrumented durability operation it performs.
    """
    _digest, events, interval, epsilon, _batched = _recovery_plan(case)
    recorder = CrashPointInjector(None)
    tmp = Path(tempfile.mkdtemp(prefix="repro-crash-probe-"))
    try:
        with injected(recorder):
            engine = HierarchicalEngine(
                case.query,
                epsilon=epsilon,
                durability=DurabilityConfig(
                    str(tmp / "wal"), checkpoint_interval=interval
                ),
            )
            engine.load(case.database())
            for event in events:
                _apply_event(engine, event)
            engine.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return recorder.total_hits


def run_crash_recovery_case(
    case: ConformanceCase,
    crash_hit: Optional[int] = None,
    max_mismatches: int = 20,
) -> ConformanceReport:
    """Crash the case's durable workload, recover, resume, diff everything.

    ``crash_hit`` arms the k-th crash-point hit (1-based); by default one
    case-deterministic hit is chosen, so fuzzed cases cover the whole
    matrix over time while each individual case replays identically.
    Reported mismatch kinds all start with ``recovery``:

    * ``recovery-unrecoverable`` — recovery itself failed although durable
      state should exist;
    * ``recovery-version`` — the resumed engine missed the oracle version;
    * ``recovery-result`` — final result diverges from the naive oracle;
    * ``recovery-order`` — result matches but the enumeration order differs
      from the never-crashed durable twin (the PR-5 purity contract);
    * ``recovery-invariant`` — the deep invariant probe failed after resume;
    * ``recovery-oracle`` — the *clean* durable run already diverges from
      the naive oracle (durability hooks corrupted normal ingestion).
    """
    query = parse_query(case.query)
    supported = classify(query).hierarchical
    if not supported:
        # durability is a dynamic-engine feature; nothing to crash
        return ConformanceReport(
            query=case.query, supported=False, engines=(), checkpoints_run=0
        )
    mismatches: List[Mismatch] = []
    digest, events, interval, epsilon, batched = _recovery_plan(case)
    engine_name = (
        f"durable(eps={epsilon},{'batch' if batched else 'seq'},interval={interval})"
    )
    tmp = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    try:
        # -- ground truth: the naive oracle over the same event sequence
        naive = NaiveRecomputeEngine(case.query).load(case.database())
        for kind, payload in events:
            try:
                if kind == "update":
                    naive.apply(payload)
                elif kind == "batch":
                    naive.apply_batch(list(payload))
            except RejectedUpdateError:
                pass
        truth = dict(naive.result())

        # -- the never-crashed durable twin: exact-order oracle AND the
        #    event->version map used to resume after recovery.  A recorder
        #    injector counts the crash sites the workload passes through.
        oracle_config = DurabilityConfig(
            str(tmp / "oracle"), checkpoint_interval=interval
        )
        recorder = CrashPointInjector(None)
        with injected(recorder):
            oracle = HierarchicalEngine(
                case.query, epsilon=epsilon, durability=oracle_config
            )
            oracle.load(case.database())
            post_versions: List[int] = []
            for event in events:
                _apply_event(oracle, event)
                post_versions.append(oracle.version)
        oracle_result = dict(oracle.result())
        oracle_enum = list(oracle.enumerate())
        oracle_version = oracle.version
        oracle.close()
        total_hits = recorder.total_hits
        clean_diff = _diff(truth, oracle_result)
        if clean_diff is not None:
            mismatches.append(
                Mismatch(engine_name, -1, "recovery-oracle", clean_diff)
            )
            return ConformanceReport(
                query=case.query,
                supported=True,
                engines=(engine_name,),
                checkpoints_run=len(events),
                mismatches=mismatches,
            )

        # -- the durable-acknowledgement contract: a *cleanly closed*
        #    directory must recover to exactly the acknowledged state.  The
        #    kill paths below cannot see a silently dropped WAL record (the
        #    resume loop re-sends anything non-durable, masking the loss),
        #    but this check does: every acked version must be on disk.
        try:
            reopened, _report = recover_engine(
                Path(oracle_config.directory), oracle_config
            )
        except DurabilityError as exc:
            mismatches.append(
                Mismatch(
                    engine_name,
                    -1,
                    "recovery-durable-loss",
                    f"cleanly closed directory failed to recover: {exc}",
                )
            )
        else:
            if reopened.version != oracle_version:
                mismatches.append(
                    Mismatch(
                        engine_name,
                        -1,
                        "recovery-durable-loss",
                        f"clean close acknowledged version {oracle_version} "
                        f"but only {reopened.version} was durable",
                    )
                )
            else:
                reopened_diff = _diff(oracle_result, dict(reopened.result()))
                if reopened_diff is not None:
                    mismatches.append(
                        Mismatch(
                            engine_name,
                            -1,
                            "recovery-durable-loss",
                            f"clean-close recovery result drifted: {reopened_diff}",
                        )
                    )
                elif list(reopened.enumerate()) != oracle_enum:
                    mismatches.append(
                        Mismatch(
                            engine_name,
                            -1,
                            "recovery-durable-loss",
                            "clean-close recovery changed the enumeration order",
                        )
                    )
            reopened.close()
        if mismatches:
            return ConformanceReport(
                query=case.query,
                supported=True,
                engines=(engine_name,),
                checkpoints_run=len(events),
                mismatches=mismatches,
            )

        # -- crash run: arm the chosen hit and run until the simulated kill
        hit = crash_hit if crash_hit is not None else 1 + digest % max(1, total_hits)
        crash_dir = tmp / "crash"
        crash_config = DurabilityConfig(str(crash_dir), checkpoint_interval=interval)
        crashed_site: Optional[str] = None
        with injected(CrashPointInjector("any", hits=hit)):
            try:
                engine = HierarchicalEngine(
                    case.query, epsilon=epsilon, durability=crash_config
                )
                engine.load(case.database())
                for event in events:
                    _apply_event(engine, event)
                engine.close()
            except SimulatedCrashError as exc:
                crashed_site = exc.site

        # -- recover (or, for a crash that predates the first durable
        #    checkpoint, restart from the source database like an operator
        #    whose load never completed)
        if crashed_site is None:
            recovered, _report = recover_engine(crash_dir, crash_config)
        else:
            try:
                recovered, _report = recover_engine(crash_dir, crash_config)
            except DurabilityError as exc:
                if find_checkpoints(crash_dir):
                    mismatches.append(
                        Mismatch(
                            engine_name,
                            -1,
                            "recovery-unrecoverable",
                            f"crash at {crashed_site!r} (hit {hit}) left "
                            f"checkpoints on disk but recovery failed: {exc}",
                        )
                    )
                    return ConformanceReport(
                        query=case.query,
                        supported=True,
                        engines=(engine_name,),
                        checkpoints_run=len(events),
                        mismatches=mismatches,
                    )
                shutil.rmtree(crash_dir, ignore_errors=True)
                recovered = HierarchicalEngine(
                    case.query, epsilon=epsilon, durability=crash_config
                )
                recovered.load(case.database())

        # -- resume: replay exactly the events past the durable version
        durable_version = recovered.version
        start = 0
        while start < len(events) and post_versions[start] <= durable_version:
            start += 1
        for event in events[start:]:
            _apply_event(recovered, event)

        context = f"crash at {crashed_site!r} (hit {hit}/{total_hits})"
        if recovered.version != oracle_version:
            mismatches.append(
                Mismatch(
                    engine_name,
                    -1,
                    "recovery-version",
                    f"{context}: resumed to version {recovered.version}, "
                    f"oracle reached {oracle_version}",
                )
            )
        result_diff = _diff(truth, dict(recovered.result()))
        if result_diff is not None:
            mismatches.append(
                Mismatch(
                    engine_name, -1, "recovery-result", f"{context}: {result_diff}"
                )
            )
        elif list(recovered.enumerate()) != oracle_enum:
            mismatches.append(
                Mismatch(
                    engine_name,
                    -1,
                    "recovery-order",
                    f"{context}: result matches but the enumeration order "
                    "diverges from the never-crashed durable engine",
                )
            )
        try:
            recovered.check_invariants()
        except ReproError as exc:
            mismatches.append(
                Mismatch(engine_name, -1, "recovery-invariant", f"{context}: {exc}")
            )
        recovered.close()
        return ConformanceReport(
            query=case.query,
            supported=True,
            engines=(engine_name,),
            checkpoints_run=len(events),
            mismatches=mismatches[:max_mismatches],
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def crash_recovery_failure(
    case: ConformanceCase, crash_hit: Optional[int] = None
) -> Optional[Mismatch]:
    """Run the crash-recovery mode and normalize any failure to a mismatch.

    The shrinker's predicate for ``recovery*`` kinds: a crash anywhere in
    the experiment itself (not a simulated one) is a finding too.
    """
    try:
        report = run_crash_recovery_case(case, crash_hit=crash_hit)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return Mismatch(
            engine="(crash-recovery)",
            checkpoint=-1,
            kind="recovery-crash",
            detail=f"{type(exc).__name__}: {exc}",
        )
    if report.mismatches:
        return report.mismatches[0]
    return None
