"""Differential conformance harness: the baselines as a standing oracle.

The paper's central claim is behavioural: IVM^ε produces exactly the same
results as every baseline strategy at every point of an update stream, for
every ε.  This package turns that claim into an executable oracle:

* :mod:`repro.conformance.queries` generates random conjunctive queries with
  *known-by-construction* classification labels (hierarchical via a random
  variable-tree, non-hierarchical via a planted cross-branch atom) and
  checks that the classifier, the width measures, and the parser round-trip
  agree with the construction;
* :mod:`repro.conformance.datagen` materializes random databases and update
  streams for any generated query, driven by the same degree-distribution
  knobs as :mod:`repro.workloads.generators`;
* :mod:`repro.conformance.runner` executes one workload through
  :class:`~repro.core.api.HierarchicalEngine` across an ε grid — single-tuple
  and batched paths — plus all four baselines, and diffs full results, result
  deltas, enumeration invariants, internal structure invariants, and
  ring-aggregate answers (maintained, enumerate-and-fold, and snapshot
  paths against the fold over the oracle) at every checkpoint; its kill-mid-batch mode (:func:`run_crash_recovery_case`)
  crashes a *durable* engine at a case-deterministic fault-injection point,
  recovers it from checkpoint + WAL, replays the rest of the workload, and
  diffs the outcome against the naive oracle and a never-crashed twin;
* :mod:`repro.conformance.metamorphic` states the metamorphic properties
  (insert-then-delete is a no-op, permuting a consolidated batch is
  result-invariant, a partitioned stream equals the whole, shard-merged
  execution is indistinguishable from a single engine, maintained
  aggregates equal the fold over the oracle) checked both by the
  Hypothesis test-suite and the fuzzer;
* :mod:`repro.conformance.shrink` reduces a failing case to a minimal repro
  and serializes it to a JSON file that ``tools/fuzz.py --repro`` replays.

The seeded, time-boxed entry point is ``tools/fuzz.py``; a deterministic
subset runs in tier-1 CI (``tests/test_conformance_*.py``).
"""

from repro.conformance.datagen import DataProfile, random_database, random_update_stream
from repro.conformance.metamorphic import (
    check_aggregate_equivalence,
    check_batch_permutation_invariance,
    check_insert_delete_noop,
    check_partition_union,
    check_reshard_equivalence,
    check_retune_equivalence,
    check_shard_merge,
    check_snapshot_isolation,
)
from repro.conformance.queries import (
    LabeledQuery,
    check_query_conformance,
    random_labeled_query,
    random_nonhierarchical_query,
)
from repro.conformance.runner import (
    ConformanceCase,
    ConformanceError,
    ConformanceReport,
    Mismatch,
    aggregate_specs_for,
    case_failure,
    count_crash_sites,
    crash_recovery_failure,
    run_case,
    run_crash_recovery_case,
)
from repro.conformance.shrink import load_case, shrink_case, write_repro

__all__ = [
    "ConformanceCase",
    "ConformanceError",
    "ConformanceReport",
    "DataProfile",
    "LabeledQuery",
    "Mismatch",
    "aggregate_specs_for",
    "case_failure",
    "check_aggregate_equivalence",
    "check_batch_permutation_invariance",
    "check_insert_delete_noop",
    "check_partition_union",
    "check_query_conformance",
    "check_reshard_equivalence",
    "check_retune_equivalence",
    "check_shard_merge",
    "check_snapshot_isolation",
    "count_crash_sites",
    "crash_recovery_failure",
    "load_case",
    "run_crash_recovery_case",
    "random_database",
    "random_labeled_query",
    "random_nonhierarchical_query",
    "random_update_stream",
    "run_case",
    "shrink_case",
    "write_repro",
]
