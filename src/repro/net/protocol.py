"""Wire protocol for the networked serving layer: length-prefixed JSON.

Every message on the wire is one *frame*: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON encoding a single object.
The same framing is used in both directions and by both the blocking
(:mod:`socket`) client and the :mod:`asyncio` server, so the helpers here
come in sync and async flavours sharing one encoder.

Two message shapes flow over a connection:

* **Requests and responses** carry an ``"id"`` key: the client picks a
  per-connection monotonically increasing integer, the server echoes it in
  exactly one response (``"ok": true`` plus op-specific payload, or
  ``"ok": false`` with ``"error"``/``"kind"``).
* **Pushes** carry a ``"sub"`` key instead: server-initiated subscription
  traffic (``"kind": "delta"`` or ``"kind": "resync"``) that the client
  demultiplexes to the matching subscription.

JSON has no tuples, so result tuples cross the wire as lists and are
re-tupled on arrival by :func:`unwire_pairs`; scenario values are scalars
(ints/strings), which JSON round-trips exactly.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.update import Update
from repro.exceptions import ReproError

PROTOCOL_VERSION = 1

#: Frame header: one 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Hard ceiling on a single frame's payload, defending both sides against
#: a corrupt or hostile header claiming a multi-gigabyte length.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ReproError):
    """A frame violated the wire protocol (bad header, overflow, bad JSON)."""


class ConnectionClosedError(ReproError):
    """The peer closed the connection mid-conversation."""


class RemoteError(ReproError):
    """The server answered a request with ``ok: false``.

    ``kind`` carries the server-side exception class name (for example
    ``"RejectedUpdateError"``) so clients can branch without parsing the
    message text.
    """

    def __init__(self, message: str, kind: str = "ReproError") -> None:
        super().__init__(message)
        self.kind = kind


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame payload back into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_header(header: bytes) -> int:
    """Validate a 4-byte header and return the announced payload length."""
    if len(header) != HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes, above MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return length


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Blocking read of exactly ``count`` bytes (or raise on early EOF)."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosedError(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Dict[str, Any]:
    """Blocking read of one frame from a connected socket."""
    length = parse_header(recv_exactly(sock, HEADER.size))
    return decode_payload(recv_exactly(sock, length))


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Blocking write of one frame to a connected socket."""
    sock.sendall(encode_frame(message))


async def read_frame_async(reader, header: Optional[bytes] = None) -> Dict[str, Any]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    ``header`` lets the caller hand over 4 bytes it already consumed (the
    server peeks the first bytes of a connection to detect HTTP).
    Returns ``None``-equivalent by raising :class:`ConnectionClosedError`
    on a clean EOF *between* frames; EOF mid-frame is also an error.
    """
    import asyncio

    try:
        if header is None:
            header = await reader.readexactly(HEADER.size)
        length = parse_header(header)
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosedError(
            "connection closed mid-frame"
            if exc.partial
            else "connection closed"
        ) from exc
    return decode_payload(payload)


# ----------------------------------------------------------------------
# value conversion: engine objects <-> JSON-safe structures
# ----------------------------------------------------------------------
def wire_tuple(tup: Sequence[Any]) -> List[Any]:
    return list(tup)


def unwire_tuple(raw: Any) -> Tuple[Any, ...]:
    if not isinstance(raw, (list, tuple)):
        raise ProtocolError(f"expected a tuple on the wire, got {raw!r}")
    return tuple(raw)


def wire_pairs(pairs: Iterable[Tuple[Sequence[Any], int]]) -> List[List[Any]]:
    """Encode ``(tuple, multiplicity)`` pairs as ``[[values...], mult]``."""
    return [[list(tup), int(mult)] for tup, mult in pairs]


def unwire_pairs(raw: Any) -> List[Tuple[Tuple[Any, ...], int]]:
    """Decode the output of :func:`wire_pairs`."""
    if not isinstance(raw, list):
        raise ProtocolError(f"expected a pair list on the wire, got {raw!r}")
    pairs: List[Tuple[Tuple[Any, ...], int]] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(f"malformed wire pair {item!r}")
        tup, mult = item
        pairs.append((unwire_tuple(tup), int(mult)))
    return pairs


def wire_updates(updates: Iterable[Update]) -> List[List[Any]]:
    """Encode updates as ``[relation, [values...], multiplicity]`` triples."""
    return [[u.relation, list(u.tuple), int(u.multiplicity)] for u in updates]


def unwire_updates(raw: Any) -> List[Update]:
    """Decode the output of :func:`wire_updates`."""
    if not isinstance(raw, list):
        raise ProtocolError(f"expected an update list on the wire, got {raw!r}")
    updates: List[Update] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise ProtocolError(f"malformed wire update {item!r}")
        relation, tup, mult = item
        updates.append(Update(str(relation), unwire_tuple(tup), int(mult)))
    return updates
