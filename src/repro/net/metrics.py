"""Prometheus text-format rendering of the serving layer's statistics.

The networked server answers plain ``GET /metrics`` HTTP requests on its
one listening port (see :class:`repro.net.server.EngineTCPServer`) with
the text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE``
comment lines followed by ``name value`` samples.  The export flattens
four sources into one page:

* :class:`~repro.adaptive.telemetry.WorkloadTelemetry` — ingest/read
  traffic counters and EWMA costs (``repro_workload_*``),
* :class:`~repro.ivm.rebalance.RebalanceStats` — minor/major rebalances,
  heavy/light moves, retunes (``repro_rebalance_*``),
* :class:`~repro.core.serving.ServingStats` — commits, reads, auto-retunes
  served by the :class:`~repro.core.serving.EngineServer`
  (``repro_serving_*``),
* the network layer's own counters (``repro_net_*``) plus engine gauges
  (``repro_engine_version``, ``repro_engine_epsilon``).

Only the stdlib is used; no Prometheus client dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

#: (metric name, type, help) per family; values are looked up dynamically.
_Sample = Tuple[str, str, str, float]


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_families(samples: List[_Sample]) -> str:
    """Render ``(name, type, help, value)`` samples as exposition text."""
    lines: List[str] = []
    for name, mtype, help_text, value in samples:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"{name} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def render_labeled_family(
    name: str,
    mtype: str,
    help_text: str,
    label: str,
    values: Mapping[str, float],
) -> str:
    """Render one family with a single label dimension (e.g. per-ring
    counters): one HELP/TYPE header, one sample per label value."""
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {mtype}"]
    for label_value in sorted(values):
        escaped = str(label_value).replace("\\", "\\\\").replace('"', '\\"')
        lines.append(f'{name}{{{label}="{escaped}"}} {_fmt(values[label_value])}')
    return "\n".join(lines) + "\n"


def _prefixed(
    prefix: str,
    mapping: Mapping[str, float],
    types: Mapping[str, str],
    helps: Mapping[str, str],
) -> List[_Sample]:
    samples: List[_Sample] = []
    for key, value in mapping.items():
        name = f"{prefix}_{key}"
        samples.append(
            (
                name,
                types.get(key, "gauge"),
                helps.get(key, f"{key} from the {prefix} group."),
                float(value),
            )
        )
    return samples


_WORKLOAD_TYPES = {
    "update_events": "counter",
    "update_tuples": "counter",
    "update_seconds": "counter",
    "read_events": "counter",
    "read_tuples": "counter",
    "read_seconds": "counter",
}
_WORKLOAD_HELPS = {
    "update_events": "Ingestion events recorded by the workload telemetry.",
    "update_tuples": "Source tuples across all recorded ingestion events.",
    "update_seconds": "Wall-clock seconds spent in recorded ingestion.",
    "read_events": "Enumeration events recorded by the workload telemetry.",
    "read_tuples": "Tuples produced across all recorded enumerations.",
    "read_seconds": "Wall-clock seconds spent in recorded enumeration.",
    "ewma_update_seconds": "EWMA-smoothed per-event ingestion cost.",
    "ewma_read_seconds": "EWMA-smoothed per-event enumeration cost.",
    "read_fraction": "EWMA-smoothed fraction of events that are reads.",
}

_REBALANCE_HELPS = {
    "updates": "Single-tuple updates processed by the maintenance driver.",
    "batches": "Consolidated batches processed by the maintenance driver.",
    "minor_rebalances": "Minor (per-key) heavy/light rebalances.",
    "major_rebalances": "Major (full repartition) rebalances.",
    "moved_to_light": "Keys demoted from the heavy to the light partition.",
    "moved_to_heavy": "Keys promoted from the light to the heavy partition.",
    "retunes": "Explicit epsilon retunes (each is a major rebalance).",
}

_SERVING_HELPS = {
    "batches_applied": "Commits applied through the serving commit path.",
    "reads_served": "Read tickets served.",
    "retunes_applied": "Auto-retunes triggered by the adaptive controller.",
    "reshards_applied": "Online reshards applied through the serving layer.",
}

_NET_HELPS = {
    "connections_total": "TCP connections accepted since server start.",
    "connections_current": "TCP connections currently open.",
    "connections_refused": "Connections refused at the connection limit.",
    "frames_received": "Protocol frames received across all connections.",
    "frames_sent": "Protocol frames sent across all connections.",
    "requests_failed": "Requests answered with an error frame.",
    "subscriptions_total": "Subscriptions opened since server start.",
    "subscribers_current": "Subscriptions currently active.",
    "deltas_pushed": "Per-commit delta frames enqueued to subscribers.",
    "resyncs": "Slow-subscriber resyncs (queue overflow coalescing).",
    "commits_observed": "Engine commits observed by the push hub.",
    "max_queue_depth": "High-water mark of any subscriber send queue.",
    "http_requests": "Plain HTTP requests served on the shared port.",
    "agg_subscriptions_total": "Aggregate subscriptions opened since start.",
    "agg_subscribers_current": "Aggregate subscriptions currently active.",
    "agg_deltas_pushed": "Folded aggregate delta frames enqueued.",
    "agg_resyncs": "Slow aggregate-subscriber resyncs (queue overflow).",
}


def render_server_metrics(
    serving,
    net_stats: Optional[Mapping[str, float]] = None,
    ring_deltas: Optional[Mapping[str, float]] = None,
) -> str:
    """Render one Prometheus page for an :class:`EngineServer`.

    ``serving`` is the :class:`repro.core.serving.EngineServer`;
    ``net_stats`` is the optional flat counter dict of the TCP front-end;
    ``ring_deltas`` is the optional per-ring breakdown of pushed aggregate
    delta frames (rendered as one labeled family).  Sources that are
    absent (no telemetry attached, engine not loaded yet, static engine
    without rebalance stats) are simply omitted.
    """
    samples: List[_Sample] = []
    engine = serving.engine

    version = getattr(engine, "version", None)
    if version is not None:
        samples.append(
            (
                "repro_engine_version",
                "gauge",
                "Engine version: count of committed ingestion events.",
                float(version),
            )
        )
    epsilon = getattr(engine, "epsilon", None)
    if epsilon is not None:
        samples.append(
            (
                "repro_engine_epsilon",
                "gauge",
                "Current epsilon trade-off parameter.",
                float(epsilon),
            )
        )

    shards = getattr(engine, "shards", None)
    if shards is not None:
        samples.append(
            (
                "repro_engine_shards",
                "gauge",
                "Current shard count of the served fleet.",
                float(shards),
            )
        )

    telemetry = getattr(engine, "telemetry", None)
    if telemetry is not None:
        samples.extend(
            _prefixed(
                "repro_workload",
                telemetry.as_dict(),
                _WORKLOAD_TYPES,
                _WORKLOAD_HELPS,
            )
        )

    rebalance = None
    try:
        rebalance = engine.rebalance_stats
    except Exception:  # noqa: BLE001 - not loaded / static engine
        rebalance = None
    if rebalance is not None:
        samples.extend(
            _prefixed(
                "repro_rebalance",
                rebalance.as_dict(),
                {key: "counter" for key in _REBALANCE_HELPS},
                _REBALANCE_HELPS,
            )
        )

    stats = serving.stats
    samples.extend(
        _prefixed(
            "repro_serving",
            {
                "batches_applied": stats.batches_applied,
                "reads_served": stats.reads_served,
                "retunes_applied": stats.retunes_applied,
                "reshards_applied": stats.reshards_applied,
            },
            {key: "counter" for key in _SERVING_HELPS},
            _SERVING_HELPS,
        )
    )

    if net_stats is not None:
        net_stats = dict(net_stats)
        # The aggregate read counter gets the exact name the dashboards
        # key on rather than the generic repro_net_* prefix.
        aggregate_reads = net_stats.pop("aggregate_reads", None)
        if aggregate_reads is not None:
            samples.append(
                (
                    "repro_aggregate_reads_total",
                    "counter",
                    "Aggregate reads served (one-shot ops, subscription "
                    "snapshots, and resyncs).",
                    float(aggregate_reads),
                )
            )
        net_types: Dict[str, str] = {
            key: "gauge"
            if key
            in (
                "connections_current",
                "subscribers_current",
                "agg_subscribers_current",
                "max_queue_depth",
            )
            else "counter"
            for key in net_stats
        }
        samples.extend(_prefixed("repro_net", net_stats, net_types, _NET_HELPS))

    page = render_families(samples)
    if ring_deltas:
        page += render_labeled_family(
            "repro_net_aggregate_deltas_pushed_total",
            "counter",
            "Folded aggregate delta frames enqueued, by ring.",
            "ring",
            ring_deltas,
        )
    return page
