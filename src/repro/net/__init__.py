"""Networked serving: push-based delta subscriptions over asyncio TCP.

The network layer puts a wire in front of the in-process serving stack
(:class:`~repro.core.serving.EngineServer`):

* :mod:`repro.net.protocol` — length-prefixed JSON frames and the wire
  encodings for tuples, pairs, and updates.
* :mod:`repro.net.server` — :class:`EngineTCPServer` (asyncio) plus the
  :class:`ServerThread` adapter for synchronous hosts; serves requests,
  paged snapshot enumeration, push subscriptions with bounded-queue
  backpressure, and ``GET /metrics`` on the same port.
* :mod:`repro.net.client` — the blocking :class:`EngineClient` and the
  asyncio :class:`AsyncEngineClient`, both mirroring subscriptions
  through the delta/resync state machine.
* :mod:`repro.net.metrics` — Prometheus text-format export.

See ``docs/architecture.md`` section 13 for the protocol contract, and
``tools/serve.py`` for the command-line entry point.
"""

from repro.net.client import (
    AggregateSubscription,
    AggregateSubscriptionState,
    AsyncEngineClient,
    AsyncSubscription,
    EngineClient,
    RemoteSnapshot,
    Subscription,
    SubscriptionState,
)
from repro.net.metrics import render_server_metrics
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosedError,
    ProtocolError,
    RemoteError,
    unwire_pairs,
    unwire_updates,
    wire_pairs,
    wire_updates,
)
from repro.net.server import (
    EngineTCPServer,
    NetServerStats,
    ServerConfig,
    ServerThread,
)

__all__ = [
    "AggregateSubscription",
    "AggregateSubscriptionState",
    "AsyncEngineClient",
    "AsyncSubscription",
    "ConnectionClosedError",
    "EngineClient",
    "EngineTCPServer",
    "MAX_FRAME_BYTES",
    "NetServerStats",
    "ProtocolError",
    "RemoteError",
    "RemoteSnapshot",
    "ServerConfig",
    "ServerThread",
    "Subscription",
    "SubscriptionState",
    "render_server_metrics",
    "unwire_pairs",
    "unwire_updates",
    "wire_pairs",
    "wire_updates",
]
