"""Client library for the networked serving layer.

Two clients share the wire protocol of :mod:`repro.net.protocol`:

* :class:`EngineClient` — blocking, for scripts and tests.  A background
  reader thread demultiplexes incoming frames: responses (``"id"``) wake
  the waiting request, pushes (``"sub"``) are applied to the matching
  :class:`Subscription`.
* :class:`AsyncEngineClient` — :mod:`asyncio` flavour, used by
  ``benchmarks/bench_subscriptions.py`` to hold hundreds of concurrent
  subscriptions on one event loop.

Both apply subscription pushes through one shared state machine,
:class:`SubscriptionState`, which encodes the consistency contract:

* the subscribe response carries the full result at some version ``v0``;
* a ``delta`` push at version ``v`` is applied iff ``v`` is *newer* than
  the current version (pushes overlapping the initial read deduplicate);
* a ``resync`` push (the server's bounded-queue overflow path) *replaces*
  the state wholesale at its version.

Applying every push in arrival order therefore reproduces the served
result at every version the subscription observes.

Aggregate subscriptions (:meth:`EngineClient.subscribe_aggregate`) follow
the identical contract through :class:`AggregateSubscriptionState`, except
the mirrored state is ``{group: (support, ring element)}`` and deltas
merge by ring addition — the client holds O(groups) state and re-derives
answers locally with the spec's ring.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.data.update import Update, UpdateBatch
from repro.net.protocol import (
    ConnectionClosedError,
    RemoteError,
    read_frame,
    unwire_pairs,
    wire_updates,
    write_frame,
)
from repro.rings.spec import AggregateSpec


class SubscriptionState:
    """The client-side result mirror of one subscription (thread-safe)."""

    def __init__(self, version: int, pairs) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.version = version
        self._result: Dict[Tuple, int] = {tuple(t): m for t, m in pairs}
        self.deltas_applied = 0
        self.deltas_skipped = 0
        self.resyncs = 0
        #: Every applied push, as ``(kind, version, pairs)`` — kept so
        #: tests can replay the exact pushed history against an oracle.
        self.events: List[Tuple[str, int, List]] = []

    def apply(self, kind: str, version: int, pairs) -> bool:
        """Apply one push; returns True when the state changed."""
        with self._changed:
            if kind == "resync":
                self._result = {tuple(t): m for t, m in pairs}
                self.version = version
                self.resyncs += 1
                self.events.append(("resync", version, list(pairs)))
                self._changed.notify_all()
                return True
            if version <= self.version:
                self.deltas_skipped += 1
                return False
            for tup, mult in pairs:
                tup = tuple(tup)
                updated = self._result.get(tup, 0) + mult
                if updated:
                    self._result[tup] = updated
                else:
                    self._result.pop(tup, None)
            self.version = version
            self.deltas_applied += 1
            self.events.append(("delta", version, list(pairs)))
            self._changed.notify_all()
            return True

    def result(self) -> Dict[Tuple, int]:
        with self._lock:
            return dict(self._result)

    def wait_for_version(self, version: int, timeout: float = 30.0) -> bool:
        """Block until the mirrored state reaches ``version`` (or time out)."""
        import time

        deadline = time.monotonic() + timeout
        with self._changed:
            while self.version < version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._changed.wait(remaining)
            return True

    def apply_push(self, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "delta":
            self.apply(
                "delta", int(message["version"]), unwire_pairs(message["delta"])
            )
        elif kind == "resync":
            self.apply(
                "resync", int(message["version"]), unwire_pairs(message["result"])
            )


class AggregateSubscriptionState:
    """The client-side mirror of one aggregate subscription (thread-safe).

    Mirrors ``{group: (support, ring element)}`` — the same shape
    :class:`~repro.rings.spec.MaintainedAggregate` keeps server-side — by
    applying the server's folded group deltas with ring addition.  A group
    is present iff its support is positive; a zero element with live
    support stays (its answer is the ring's zero answer).  The consistency
    contract matches :class:`SubscriptionState` exactly: deltas apply iff
    newer than the current version, resyncs replace wholesale.
    """

    def __init__(self, spec: AggregateSpec, version: int, rows) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.spec = spec
        self.ring = spec.ring
        self.version = version
        self._elements: Dict[Tuple, Tuple[int, Any]] = self._unwire(rows)
        self.deltas_applied = 0
        self.deltas_skipped = 0
        self.resyncs = 0
        #: Every applied push, as ``(kind, version, rows)`` — kept so tests
        #: can replay the exact pushed history against an oracle.
        self.events: List[Tuple[str, int, List]] = []

    def _unwire(self, rows) -> Dict[Tuple, Tuple[int, Any]]:
        ring = self.ring
        return {
            tuple(group): (int(support), ring.from_wire(element))
            for group, support, element in rows
        }

    def apply(self, kind: str, version: int, rows) -> bool:
        """Apply one push (raw wire rows); returns True on a state change."""
        with self._changed:
            if kind == "resync":
                self._elements = self._unwire(rows)
                self.version = version
                self.resyncs += 1
                self.events.append(("resync", version, list(rows)))
                self._changed.notify_all()
                return True
            if version <= self.version:
                self.deltas_skipped += 1
                return False
            ring = self.ring
            for group, support_delta, element_wire in rows:
                group = tuple(group)
                support, element = self._elements.get(group, (0, ring.zero()))
                support += int(support_delta)
                element = ring.add(element, ring.from_wire(element_wire))
                if support > 0:
                    self._elements[group] = (support, element)
                else:
                    self._elements.pop(group, None)
            self.version = version
            self.deltas_applied += 1
            self.events.append(("delta", version, list(rows)))
            self._changed.notify_all()
            return True

    def apply_push(self, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "delta":
            self.apply("delta", int(message["version"]), message["delta"])
        elif kind == "resync":
            self.apply("resync", int(message["version"]), message["result"])

    def elements(self) -> Dict[Tuple, Tuple[int, Any]]:
        """Raw ``{group: (support, element)}`` at the mirrored version."""
        with self._lock:
            return dict(self._elements)

    def answers(self) -> Dict[Tuple, Any]:
        """User-facing ``{group: answer}`` at the mirrored version."""
        ring = self.ring
        with self._lock:
            return {
                group: ring.answer(element)
                for group, (_support, element) in self._elements.items()
            }

    def wait_for_version(self, version: int, timeout: float = 30.0) -> bool:
        """Block until the mirrored state reaches ``version`` (or time out)."""
        import time

        deadline = time.monotonic() + timeout
        with self._changed:
            while self.version < version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._changed.wait(remaining)
            return True


class AggregateSubscription:
    """Handle on one aggregate push subscription."""

    def __init__(
        self,
        client: "EngineClient",
        sid: int,
        state: AggregateSubscriptionState,
    ) -> None:
        self._client = client
        self.sid = sid
        self.state = state

    @property
    def version(self) -> int:
        return self.state.version

    def elements(self) -> Dict[Tuple, Tuple[int, Any]]:
        return self.state.elements()

    def answers(self) -> Dict[Tuple, Any]:
        return self.state.answers()

    def wait_for_version(self, version: int, timeout: float = 30.0) -> bool:
        return self.state.wait_for_version(version, timeout)

    def close(self) -> None:
        self._client.unsubscribe(self)


class Subscription:
    """Handle on one push subscription held by an :class:`EngineClient`."""

    def __init__(self, client: "EngineClient", sid: int, state: SubscriptionState):
        self._client = client
        self.sid = sid
        self.state = state

    @property
    def version(self) -> int:
        return self.state.version

    def result(self) -> Dict[Tuple, int]:
        return self.state.result()

    def wait_for_version(self, version: int, timeout: float = 30.0) -> bool:
        return self.state.wait_for_version(version, timeout)

    def close(self) -> None:
        self._client.unsubscribe(self)


class RemoteSnapshot:
    """Handle on a server-side private snapshot (paged enumeration)."""

    def __init__(self, client: "EngineClient", snap: int, version: int) -> None:
        self._client = client
        self.snap = snap
        self.version = version
        self._closed = False

    def page(self, limit: int = 100) -> Tuple[List[Tuple[Tuple, int]], bool]:
        """Fetch the next page; returns ``(pairs, done)``."""
        reply = self._client._request(
            "snapshot_page", snap=self.snap, limit=limit
        )
        return unwire_pairs(reply["pairs"]), bool(reply["done"])

    def pairs(self, page_size: int = 100) -> Iterator[Tuple[Tuple, int]]:
        """Iterate the whole snapshot in pages."""
        while True:
            page, done = self.page(page_size)
            yield from page
            if done:
                return

    def result(self, page_size: int = 500) -> Dict[Tuple, int]:
        return {tup: mult for tup, mult in self.pairs(page_size)}

    def lookup(self, tup) -> int:
        reply = self._client._request(
            "snapshot_lookup", snap=self.snap, tuple=list(tup)
        )
        return int(reply["multiplicity"])

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._client._request("snapshot_close", snap=self.snap)

    def __enter__(self) -> "RemoteSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        except (ConnectionClosedError, ConnectionError, OSError):
            pass


class EngineClient:
    """Blocking client for :class:`repro.net.server.EngineTCPServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(None)  # the reader thread blocks indefinitely
        self._write_lock = threading.Lock()
        self._route_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, "_Waiter"] = {}
        self._subscriptions: Dict[int, SubscriptionState] = {}
        #: Pushes that arrived before the subscribe() caller registered
        #: its state object (the reader thread outruns the caller).
        self._orphan_pushes: Dict[int, List[Dict]] = {}
        self._closed = False
        self._reader_error: Optional[BaseException] = None
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-net-client", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _reader_loop(self) -> None:
        try:
            while True:
                message = read_frame(self._sock)
                if "id" in message and message["id"] is not None:
                    with self._route_lock:
                        waiter = self._pending.pop(message["id"], None)
                    if waiter is not None:
                        waiter.resolve(message)
                elif "sub" in message:
                    self._route_push(message)
        except BaseException as exc:  # noqa: BLE001 - wakes all waiters
            self._reader_error = exc
            with self._route_lock:
                pending, self._pending = self._pending, {}
            for waiter in pending.values():
                waiter.fail(exc)

    def _route_push(self, message: Dict) -> None:
        with self._route_lock:
            state = self._subscriptions.get(message["sub"])
            if state is None:
                self._orphan_pushes.setdefault(message["sub"], []).append(message)
                return
        self._apply_push(state, message)

    @staticmethod
    def _apply_push(state, message: Dict) -> None:
        # Both state flavours (result mirror, aggregate mirror) parse and
        # apply their own push payloads.
        state.apply_push(message)

    def _request(self, op: str, **params) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionClosedError("client closed")
        request_id = next(self._ids)
        waiter = _Waiter()
        with self._route_lock:
            if self._reader_error is not None:
                raise ConnectionClosedError(
                    f"connection lost: {self._reader_error}"
                ) from self._reader_error
            self._pending[request_id] = waiter
        message = {"op": op, "id": request_id, **params}
        with self._write_lock:
            write_frame(self._sock, message)
        reply = waiter.wait(self.timeout)
        if not reply.get("ok", False):
            raise RemoteError(
                str(reply.get("error", "request failed")),
                kind=str(reply.get("kind", "ReproError")),
            )
        return reply

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._request("ping")

    def read(self, limit: Optional[int] = None) -> Tuple[int, List[Tuple[Tuple, int]]]:
        """One served read: ``(version, pairs)``."""
        reply = self._request("read", limit=limit)
        return int(reply["version"]), unwire_pairs(reply["pairs"])

    def result(self) -> Dict[Tuple, int]:
        _, pairs = self.read()
        return {tup: mult for tup, mult in pairs}

    def lookup(self, tup) -> int:
        reply = self._request("lookup", tuple=list(tup))
        return int(reply["multiplicity"])

    @staticmethod
    def _coerce_spec(ring, value, group_by) -> AggregateSpec:
        if isinstance(ring, AggregateSpec):
            if value is not None or group_by is not None:
                raise ValueError(
                    "pass either an AggregateSpec or ring/value/group_by, "
                    "not both"
                )
            return ring
        return AggregateSpec(ring, value, group_by)

    def aggregate_read(
        self, ring, value=None, group_by=None, maintained: bool = True
    ) -> Tuple[int, Dict[Tuple, Tuple[int, Any]]]:
        """One served aggregate read: ``(version, {group: (support, element)})``."""
        spec = self._coerce_spec(ring, value, group_by)
        reply = self._request(
            "aggregate", spec=spec.to_wire(), maintained=maintained
        )
        r = spec.ring
        elements = {
            tuple(group): (int(support), r.from_wire(element))
            for group, support, element in reply["elements"]
        }
        return int(reply["version"]), elements

    def aggregate(
        self, ring, value=None, group_by=None, maintained: bool = True
    ) -> Dict[Tuple, Any]:
        """Served aggregate answers ``{group: answer}`` (like :meth:`result`)."""
        spec = self._coerce_spec(ring, value, group_by)
        _, elements = self.aggregate_read(spec, maintained=maintained)
        r = spec.ring
        return {
            group: r.answer(element)
            for group, (_support, element) in elements.items()
        }

    def apply_batch(self, updates) -> int:
        """Apply one batch remotely; returns the post-commit version."""
        if isinstance(updates, UpdateBatch):
            updates = list(updates.updates())
        reply = self._request("apply_batch", updates=wire_updates(updates))
        return int(reply["version"])

    def apply_update(self, update: Update) -> int:
        reply = self._request("apply_update", update=wire_updates([update])[0])
        return int(reply["version"])

    def reshard(self, shards: int) -> int:
        """Reshard the served fleet online; returns the post-swap version.

        Blocks until the swap commits; open subscriptions ride through
        (they observe the post-reshard version with an empty delta,
        exactly like a retune).
        """
        reply = self._request("reshard", shards=shards)
        return int(reply["version"])

    def open_snapshot(self) -> RemoteSnapshot:
        reply = self._request("snapshot_open")
        return RemoteSnapshot(self, int(reply["snap"]), int(reply["version"]))

    def subscribe(
        self, query: Optional[str] = None, queue: Optional[int] = None
    ) -> Subscription:
        reply = self._request("subscribe", query=query, queue=queue)
        sid = int(reply["sub"])
        state = SubscriptionState(
            int(reply["version"]), unwire_pairs(reply["result"])
        )
        with self._route_lock:
            self._subscriptions[sid] = state
            orphans = self._orphan_pushes.pop(sid, [])
        for push in orphans:  # pushes that beat this registration
            self._apply_push(state, push)
        return Subscription(self, sid, state)

    def subscribe_aggregate(
        self,
        ring,
        value=None,
        group_by=None,
        queue: Optional[int] = None,
    ) -> AggregateSubscription:
        """Subscribe to one aggregate: full elements now, folded group
        deltas per commit after (coalescing = ring addition)."""
        spec = self._coerce_spec(ring, value, group_by)
        reply = self._request(
            "subscribe_aggregate", spec=spec.to_wire(), queue=queue
        )
        sid = int(reply["sub"])
        state = AggregateSubscriptionState(
            spec, int(reply["version"]), reply["result"]
        )
        with self._route_lock:
            self._subscriptions[sid] = state
            orphans = self._orphan_pushes.pop(sid, [])
        for push in orphans:  # pushes that beat this registration
            self._apply_push(state, push)
        return AggregateSubscription(self, sid, state)

    def unsubscribe(self, subscription) -> None:
        self._request("unsubscribe", sub=subscription.sid)
        with self._route_lock:
            self._subscriptions.pop(subscription.sid, None)

    def metrics(self) -> str:
        return str(self._request("metrics")["text"])

    def server_stats(self) -> Dict[str, Any]:
        return self._request("stats")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(5.0)

    def __enter__(self) -> "EngineClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Waiter:
    """One outstanding request: a threading-based future."""

    __slots__ = ("_event", "_reply", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reply: Optional[Dict] = None
        self._error: Optional[BaseException] = None

    def resolve(self, reply: Dict) -> None:
        self._reply = reply
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: float) -> Dict:
        if not self._event.wait(timeout):
            raise TimeoutError("request timed out")
        if self._error is not None:
            raise ConnectionClosedError(
                f"connection lost: {self._error}"
            ) from self._error
        assert self._reply is not None
        return self._reply


# ----------------------------------------------------------------------
# asyncio client (the benchmark's workhorse)
# ----------------------------------------------------------------------
class AsyncSubscription:
    """Asyncio mirror of one subscription (single event loop, no locks)."""

    def __init__(self, sid: int, version: int, pairs) -> None:
        import asyncio

        self.sid = sid
        self.version = version
        self.result: Dict[Tuple, int] = {tuple(t): m for t, m in pairs}
        self.deltas_applied = 0
        self.resyncs = 0
        self.max_result_size = len(self.result)
        self._changed = asyncio.Event()

    def apply(self, message: Dict) -> None:
        kind = message.get("kind")
        version = int(message["version"])
        if kind == "resync":
            self.result = {tuple(t): m for t, m in unwire_pairs(message["result"])}
            self.version = version
            self.resyncs += 1
        elif kind == "delta":
            if version <= self.version:
                return
            for tup, mult in unwire_pairs(message["delta"]):
                updated = self.result.get(tup, 0) + mult
                if updated:
                    self.result[tup] = updated
                else:
                    self.result.pop(tup, None)
            self.version = version
            self.deltas_applied += 1
        else:  # pragma: no cover - unknown push kind
            return
        self.max_result_size = max(self.max_result_size, len(self.result))
        self._changed.set()

    async def wait_for_version(self, version: int, timeout: float = 60.0) -> bool:
        import asyncio
        import time

        deadline = time.monotonic() + timeout
        while self.version < version:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._changed.clear()
            if self.version >= version:
                return True
            try:
                await asyncio.wait_for(self._changed.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True


class AsyncEngineClient:
    """Asyncio client; hundreds of these share one event loop cheaply."""

    def __init__(self) -> None:
        import asyncio

        self._reader: Optional[Any] = None
        self._writer: Optional[Any] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, Any] = {}
        self._subscriptions: Dict[int, AsyncSubscription] = {}
        self._orphan_pushes: Dict[int, List[Dict]] = {}
        self._task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncEngineClient":
        import asyncio

        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._task = asyncio.get_running_loop().create_task(client._reader_loop())
        return client

    async def _reader_loop(self) -> None:
        import asyncio

        from repro.net.protocol import read_frame_async

        try:
            while True:
                message = await read_frame_async(self._reader)
                if "id" in message and message["id"] is not None:
                    future = self._pending.pop(message["id"], None)
                    if future is not None and not future.done():
                        future.set_result(message)
                elif "sub" in message:
                    state = self._subscriptions.get(message["sub"])
                    if state is not None:
                        state.apply(message)
                    else:
                        self._orphan_pushes.setdefault(
                            message["sub"], []
                        ).append(message)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - wakes all waiters
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionClosedError(f"connection lost: {exc}")
                    )
            self._pending.clear()

    async def request(self, op: str, **params) -> Dict[str, Any]:
        import asyncio

        from repro.net.protocol import encode_frame

        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        frame = encode_frame({"op": op, "id": request_id, **params})
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        reply = await future
        if not reply.get("ok", False):
            raise RemoteError(
                str(reply.get("error", "request failed")),
                kind=str(reply.get("kind", "ReproError")),
            )
        return reply

    async def subscribe(
        self, query: Optional[str] = None, queue: Optional[int] = None
    ) -> AsyncSubscription:
        reply = await self.request("subscribe", query=query, queue=queue)
        sid = int(reply["sub"])
        state = AsyncSubscription(
            sid, int(reply["version"]), unwire_pairs(reply["result"])
        )
        self._subscriptions[sid] = state
        for push in self._orphan_pushes.pop(sid, []):
            state.apply(push)
        return state

    async def apply_batch(self, updates) -> int:
        reply = await self.request("apply_batch", updates=wire_updates(updates))
        return int(reply["version"])

    async def read(self) -> Tuple[int, List[Tuple[Tuple, int]]]:
        reply = await self.request("read", limit=None)
        return int(reply["version"]), unwire_pairs(reply["pairs"])

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
