"""Asyncio TCP front-end for an :class:`~repro.core.serving.EngineServer`.

:class:`EngineTCPServer` serves the length-prefixed JSON frame protocol of
:mod:`repro.net.protocol` on one listening port.  Connections multiplex
three kinds of traffic:

* **Request/response ops** — ``ping``, ``read``, ``lookup``,
  ``aggregate``, ``apply_batch``/``apply_update``, snapshot paging
  (``snapshot_open``/``snapshot_page``/``snapshot_lookup``/
  ``snapshot_close``), ``subscribe``/``subscribe_aggregate``/
  ``unsubscribe``, ``metrics`` and ``stats``.  Each connection's
  requests are dispatched sequentially;
  blocking engine work runs on a thread pool so the event loop never
  stalls on enumeration or maintenance.
* **Push-based subscriptions** — a subscription receives the full result
  once (in the ``subscribe`` response) and then one consolidated delta
  frame per engine commit, computed from the batch's net effect by the
  maintenance layer's result-delta capture and fanned out by the
  :meth:`~repro.core.serving.EngineServer.on_commit` hook.  *Aggregate*
  subscriptions ride the same contract with ring-folded payloads: the
  commit's tuple delta is folded per subscribed
  :class:`~repro.rings.spec.AggregateSpec` into per-group ``(support
  delta, ring-element delta)`` rows — usually a few groups instead of
  thousands of tuples — and a lagging subscriber resyncs from one
  O(groups) maintained read instead of a full enumeration.
* **Plain HTTP** — the server peeks the first four bytes of every
  connection; ``GET `` switches the connection to a minimal HTTP/1.0
  responder so ``GET /metrics`` (Prometheus text format, see
  :mod:`repro.net.metrics`) works from curl or a Prometheus scraper with
  no extra port.

Backpressure contract (the part that keeps memory bounded): every
subscriber owns a bounded send queue.  While the subscriber keeps up,
each commit enqueues one delta frame.  When the queue is full at commit
time the subscriber is marked *lagging*: its queue is cleared, a single
resync marker takes its place, and subsequent commits only bump the
server's ``latest_version`` (coalescing — nothing accumulates per lagging
subscriber).  The sender turns the marker into one full-state resync
frame, reading the engine repeatedly until the read's version has caught
up with ``latest_version`` (checked on the event loop, so no commit can
slip between the check and the subscriber re-arming).  A subscriber
therefore costs at most ``queue_size`` frames of memory no matter how
slow its socket drains.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.core.planner import coerce_query
from repro.core.serving import EngineServer
from repro.exceptions import ReproError, UnsupportedQueryError
from repro.net.metrics import render_server_metrics
from repro.net.protocol import (
    HEADER,
    ConnectionClosedError,
    ProtocolError,
    encode_frame,
    read_frame_async,
    unwire_tuple,
    unwire_updates,
    wire_pairs,
)
from repro.rings.spec import AggregateSpec, fold_delta


def _wire_elements(ring, elements) -> list:
    """Encode ``{group: (support, element)}`` as ``[[group...], support, wire]``
    rows — the aggregate counterpart of :func:`~repro.net.protocol.wire_pairs`,
    used for initial reads, per-commit folded deltas, and resyncs alike."""
    return [
        [list(group), support, ring.to_wire(element)]
        for group, (support, element) in elements.items()
    ]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`EngineTCPServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from ``server.port``
    #: Connections above this limit receive an error frame and are closed.
    max_connections: int = 256
    #: Total concurrent subscriptions across all connections.
    max_subscriptions: int = 1024
    #: Private snapshots a single session may hold open.
    max_snapshots_per_session: int = 16
    #: Bound of each subscriber's send queue (frames); overflowing it
    #: switches the subscriber to the coalescing resync path.  A client
    #: may request a *smaller* queue in its subscribe op.
    subscriber_queue_size: int = 32
    #: Threads for blocking engine work (reads, maintenance, snapshots).
    executor_threads: int = 4
    #: When set, shrink each accepted connection's kernel send buffer and
    #: the asyncio transport's write high-water mark to this many bytes.
    #: Production servers leave it at ``None``; the backpressure tests and
    #: the subscription benchmark set it low so a non-reading subscriber
    #: stalls its sender (and overflows its queue) after a bounded number
    #: of frames instead of after megabytes of kernel buffering.
    send_buffer_bytes: Optional[int] = None


class NetServerStats:
    """Thread-safe counters of the TCP front-end (exported to /metrics)."""

    _FIELDS = (
        "connections_total",
        "connections_current",
        "connections_refused",
        "frames_received",
        "frames_sent",
        "requests_failed",
        "subscriptions_total",
        "subscribers_current",
        "deltas_pushed",
        "resyncs",
        "commits_observed",
        "max_queue_depth",
        "http_requests",
        "aggregate_reads",
        "agg_subscriptions_total",
        "agg_subscribers_current",
        "agg_deltas_pushed",
        "agg_resyncs",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self._FIELDS:
            setattr(self, field, 0)
        # Aggregate delta frames enqueued, keyed by ring name — exported
        # as one labeled Prometheus family (per-ring traffic breakdown).
        self._ring_deltas: Dict[str, int] = {}

    def add(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def add_ring_delta(self, ring_name: str, amount: int = 1) -> None:
        with self._lock:
            self._ring_deltas[ring_name] = self._ring_deltas.get(ring_name, 0) + amount

    def ring_deltas(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._ring_deltas)

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}


class _Subscriber:
    """One push subscription: its bounded queue and sender task.

    ``spec`` distinguishes the two subscription flavours: ``None`` mirrors
    the full result (per-commit tuple deltas), an :class:`AggregateSpec`
    mirrors that aggregate (per-commit folded group deltas, coalesced by
    ring addition on overflow via the same resync path).
    """

    __slots__ = ("sid", "session", "queue", "lagging", "task", "spec")

    def __init__(
        self,
        sid: int,
        session: "_Session",
        queue_size: int,
        spec: Optional[AggregateSpec] = None,
    ) -> None:
        self.sid = sid
        self.session = session
        self.queue: "asyncio.Queue[Tuple]" = asyncio.Queue(maxsize=queue_size)
        self.lagging = False
        self.task: Optional[asyncio.Task] = None
        self.spec = spec


class _Session:
    """Per-connection state: writer, open snapshots, subscriptions."""

    __slots__ = ("writer", "write_lock", "snapshots", "iterators", "subscribers")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        # One frame writer at a time: StreamWriter.drain() does not support
        # concurrent waiters on every Python version, and senders run
        # concurrently with the request dispatcher.
        self.write_lock = asyncio.Lock()
        self.snapshots: Dict[int, Any] = {}
        self.iterators: Dict[int, Any] = {}
        self.subscribers: Dict[int, _Subscriber] = {}


class EngineTCPServer:
    """Serve one :class:`EngineServer` over TCP (see module docstring)."""

    def __init__(
        self, serving: EngineServer, config: Optional[ServerConfig] = None
    ) -> None:
        self.serving = serving
        self.config = config or ServerConfig()
        self.stats = NetServerStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._sessions: Dict[int, _Session] = {}
        self._subscribers: Dict[int, _Subscriber] = {}
        self._next_session = 0
        self._next_snapshot = 0
        self._next_subscription = 0
        #: Distinct aggregate specs with live subscribers:
        #: ``{spec.key(): [spec, refcount]}``.  Mutated only on the event
        #: loop; the committing thread snapshots it with ``list()`` (atomic
        #: under the GIL) to fold each commit's delta once per spec.
        self._agg_specs: Dict[Tuple, list] = {}
        #: Highest committed version observed by the push hub; lagging
        #: subscribers resync against this ratchet.
        self.latest_version = 0
        self._closed = False
        self._listener_installed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "EngineTCPServer":
        """Bind the listening socket and install the commit listener."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-net",
        )
        self._closed = False
        if not self._listener_installed:
            # EngineServer keeps listeners for its lifetime; ``_closed``
            # turns this one into a no-op after stop().
            self.serving.on_commit(self._on_engine_commit)
            self._listener_installed = True
        self.latest_version = getattr(self.serving.engine, "version", 0)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (useful with the ephemeral ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port)

    async def stop(self) -> None:
        """Stop accepting, tear down every session, release the pool."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions.values()):
            await self._teardown_session(session)
        self._sessions.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # commit fan-out (the push hub)
    # ------------------------------------------------------------------
    def _on_engine_commit(self, version: int, delta: Dict) -> None:
        """EngineServer commit listener: runs in the committing thread.

        Besides wiring the tuple delta, folds it once per distinct
        subscribed aggregate spec (ring addition over the commit's net
        result delta) — the fold happens here, in the committing thread,
        so the event-loop fan-out stays O(subscribers) and the folded
        group deltas are exact no matter how the engine maintains its own
        aggregate state.
        """
        if self._closed:
            return
        loop = self._loop
        if loop is None:
            return
        payload = wire_pairs(delta.items())
        agg_payloads: Dict[Tuple, list] = {}
        if self._agg_specs:
            head = tuple(self.serving.engine.query.head)
            items = list(delta.items())
            for key, (spec, _count) in list(self._agg_specs.items()):
                agg_payloads[key] = _wire_elements(
                    spec.ring, fold_delta(spec, head, items)
                )
        try:
            loop.call_soon_threadsafe(
                self._publish_commit, version, payload, agg_payloads
            )
        except RuntimeError:  # pragma: no cover - loop torn down mid-commit
            pass

    def _publish_commit(
        self, version: int, wire_delta, agg_payloads: Optional[Dict] = None
    ) -> None:
        """Fan one commit out to every subscriber; runs on the event loop."""
        if version > self.latest_version:
            self.latest_version = version
        self.stats.add("commits_observed")
        agg_payloads = agg_payloads or {}
        for sub in list(self._subscribers.values()):
            if sub.lagging:
                # Coalesced: the pending resync marker covers this commit,
                # because the resync ratchet reads at >= latest_version.
                continue
            if sub.spec is None:
                item = ("delta", version, wire_delta)
            else:
                # A spec registered after this commit was folded simply has
                # no payload here; the subscriber's initial read covers it.
                item = ("agg_delta", version, agg_payloads.get(sub.spec.key(), []))
            try:
                sub.queue.put_nowait(item)
            except asyncio.QueueFull:
                sub.lagging = True
                while True:
                    try:
                        sub.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                sub.queue.put_nowait(("resync",))
                self.stats.add("resyncs" if sub.spec is None else "agg_resyncs")
            else:
                if sub.spec is None:
                    self.stats.add("deltas_pushed")
                else:
                    self.stats.add("agg_deltas_pushed")
                    self.stats.add_ring_delta(sub.spec.ring.name)
                self.stats.note_queue_depth(sub.queue.qsize())

    async def _subscription_sender(self, sub: _Subscriber) -> None:
        """Drain one subscriber's queue onto its connection."""
        try:
            while True:
                item = await sub.queue.get()
                if item[0] in ("delta", "agg_delta"):
                    _, version, wire_delta = item
                    await self._send(
                        sub.session,
                        {
                            "sub": sub.sid,
                            "kind": "delta",
                            "version": version,
                            "delta": wire_delta,
                        },
                    )
                elif sub.spec is not None:  # aggregate resync marker
                    while True:
                        version, elements = await self._run(
                            self.serving.aggregate, sub.spec
                        )
                        if self.latest_version <= version:
                            sub.lagging = False
                            break
                    self.stats.add("aggregate_reads")
                    await self._send(
                        sub.session,
                        {
                            "sub": sub.sid,
                            "kind": "resync",
                            "version": version,
                            "result": _wire_elements(sub.spec.ring, elements),
                        },
                    )
                else:  # resync marker
                    while True:
                        ticket = await self._run(self.serving.read)
                        if self.latest_version <= ticket.version:
                            # Checked on the event loop with no await
                            # before the flag flip: no commit can land in
                            # between, so re-arming here is gap-free.
                            sub.lagging = False
                            break
                    await self._send(
                        sub.session,
                        {
                            "sub": sub.sid,
                            "kind": "resync",
                            "version": ticket.version,
                            "result": wire_pairs(ticket.pairs),
                        },
                    )
        except asyncio.CancelledError:
            raise
        except (ConnectionClosedError, ConnectionError, OSError):
            pass  # the connection loop handles session teardown

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _run(self, fn: Callable, *args) -> Any:
        """Run blocking engine work on the pool."""
        assert self._loop is not None and self._pool is not None
        return await self._loop.run_in_executor(self._pool, fn, *args)

    async def _send(self, session: _Session, message: Dict[str, Any]) -> None:
        data = encode_frame(message)
        async with session.write_lock:
            session.writer.write(data)
            await session.writer.drain()
        self.stats.add("frames_sent")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed:
            writer.close()
            return
        if self.config.send_buffer_bytes is not None:
            import socket as socket_module

            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket_module.SOL_SOCKET,
                    socket_module.SO_SNDBUF,
                    self.config.send_buffer_bytes,
                )
            writer.transport.set_write_buffer_limits(
                high=self.config.send_buffer_bytes
            )
        if len(self._sessions) >= self.config.max_connections:
            self.stats.add("connections_refused")
            try:
                writer.write(
                    encode_frame(
                        {
                            "ok": False,
                            "kind": "ServerBusy",
                            "error": (
                                "connection limit reached "
                                f"({self.config.max_connections})"
                            ),
                        }
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._next_session += 1
        session = _Session(writer)
        self._sessions[self._next_session] = session
        session_id = self._next_session
        self.stats.add("connections_total")
        self.stats.add("connections_current")
        try:
            try:
                first = await reader.readexactly(HEADER.size)
            except asyncio.IncompleteReadError:
                return  # EOF before the first complete header
            if first == b"GET ":
                await self._serve_http(first, reader, writer)
                return
            header: Optional[bytes] = first
            while True:
                message = await read_frame_async(reader, header=header)
                header = None
                self.stats.add("frames_received")
                await self._dispatch(session, message)
        except ConnectionClosedError:
            pass
        except (ConnectionError, OSError, ProtocolError):
            pass
        finally:
            self._sessions.pop(session_id, None)
            self.stats.add("connections_current", -1)
            await self._teardown_session(session)

    async def _teardown_session(self, session: _Session) -> None:
        """Release everything a session holds; must survive *any* exit path.

        Runs after clean EOFs but also after reader-task death, mid-page
        disconnects, server shutdown (which *cancels* connection tasks —
        ``CancelledError`` is not an ``Exception`` and used to abandon
        the remaining handles), and pool teardown (``_run`` then fails).
        Every engine-side snapshot handle must be released regardless:
        they pin shard-local snapshot registries and copy-on-write state,
        so a crash-looping client that leaks a few per connection would
        otherwise grow the engine without bound while new sessions are
        still admitted against fresh limit counters.
        """
        for sub in list(session.subscribers.values()):
            self._drop_subscriber(sub)
        session.subscribers.clear()
        remaining = list(session.snapshots.values())
        session.snapshots.clear()
        session.iterators.clear()
        cancelled: Optional[BaseException] = None
        while remaining:
            snapshot = remaining.pop()
            try:
                await self._run(snapshot.close)
            except asyncio.CancelledError as exc:
                # The task was cancelled mid-teardown: finish releasing
                # synchronously (no more awaits), then re-raise.
                cancelled = exc
                self._close_snapshot_sync(snapshot)
                for leftover in remaining:
                    self._close_snapshot_sync(leftover)
                remaining = []
            except Exception:  # noqa: BLE001 - pool gone or close failed
                self._close_snapshot_sync(snapshot)
        try:
            session.writer.close()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        if cancelled is not None:
            raise cancelled

    @staticmethod
    def _close_snapshot_sync(snapshot) -> None:
        """Last-resort snapshot release on the caller's thread."""
        try:
            snapshot.close()
        except Exception:  # noqa: BLE001 - nothing left to do with it
            pass

    def _drop_subscriber(self, sub: _Subscriber) -> None:
        if self._subscribers.pop(sub.sid, None) is not None:
            if sub.spec is None:
                self.stats.add("subscribers_current", -1)
            else:
                self.stats.add("agg_subscribers_current", -1)
                entry = self._agg_specs.get(sub.spec.key())
                if entry is not None:
                    entry[1] -= 1
                    if entry[1] <= 0:
                        self._agg_specs.pop(sub.spec.key(), None)
        sub.session.subscribers.pop(sub.sid, None)
        if sub.task is not None:
            sub.task.cancel()

    # ------------------------------------------------------------------
    # the HTTP side door
    # ------------------------------------------------------------------
    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer one plain HTTP request (``GET /metrics``) and close."""
        self.stats.add("http_requests")
        try:
            request_line = first + await reader.readline()
            while True:  # drain headers up to the blank line
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.split("?")[0] == "/metrics":
                body = (
                    render_server_metrics(
                        self.serving,
                        self.stats.as_dict(),
                        ring_deltas=self.stats.ring_deltas(),
                    )
                ).encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found; try /metrics\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, session: _Session, message: Dict[str, Any]) -> None:
        request_id = message.get("id")
        op = message.get("op")
        try:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None or not isinstance(op, str) or op.startswith("_"):
                raise ProtocolError(f"unknown op {op!r}")
            reply = await handler(session, message)
            if reply is not None:
                reply["id"] = request_id
                reply["ok"] = True
                await self._send(session, reply)
        except (ConnectionClosedError, ConnectionError, OSError):
            raise
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported to the peer
            self.stats.add("requests_failed")
            kind = type(exc).__name__ if isinstance(exc, (ReproError, ValueError, KeyError)) else "InternalError"
            await self._send(
                session,
                {"id": request_id, "ok": False, "kind": kind, "error": str(exc)},
            )

    async def _op_ping(self, session: _Session, message: Dict) -> Dict:
        engine = self.serving.engine
        return {
            "protocol": 1,
            "query": str(engine.query),
            "mode": getattr(engine, "mode", None),
            "serving_mode": self.serving.mode,
            "epsilon": getattr(engine, "epsilon", None),
            "shards": getattr(engine, "shards", 1),
            "version": getattr(engine, "version", 0),
        }

    async def _op_read(self, session: _Session, message: Dict) -> Dict:
        limit = message.get("limit")
        ticket = await self._run(self.serving.read, limit)
        return {"version": ticket.version, "pairs": wire_pairs(ticket.pairs)}

    async def _op_lookup(self, session: _Session, message: Dict) -> Dict:
        self.serving.check_writer()
        tup = unwire_tuple(message.get("tuple"))
        if self.serving.mode == "snapshot":
            entry = self.serving._current_pinned()
            try:
                multiplicity = await self._run(entry.snapshot.lookup, tup)
                version = entry.snapshot.version
            finally:
                entry.unpin()
        else:  # locked mode has no published version; capture one briefly

            def locked_lookup():
                snapshot = self.serving.snapshot()
                try:
                    return snapshot.version, snapshot.lookup(tup)
                finally:
                    snapshot.close()

            version, multiplicity = await self._run(locked_lookup)
        return {"version": version, "multiplicity": multiplicity}

    async def _op_aggregate(self, session: _Session, message: Dict) -> Dict:
        """One consistent aggregate read: ``{group: (support, element)}`` rows.

        The client re-derives user-facing answers locally with the spec's
        ring, so one wire shape serves reads, subscription snapshots, and
        resyncs alike.
        """
        spec = AggregateSpec.from_wire(message.get("spec") or {})
        maintained = bool(message.get("maintained", True))
        version, elements = await self._run(
            self.serving.aggregate, spec, maintained
        )
        self.stats.add("aggregate_reads")
        return {
            "version": version,
            "elements": _wire_elements(spec.ring, elements),
        }

    async def _op_apply_batch(self, session: _Session, message: Dict) -> Dict:
        updates = unwire_updates(message.get("updates"))
        await self._run(self.serving.apply_batch, updates)
        return {"version": getattr(self.serving.engine, "version", 0)}

    async def _op_apply_update(self, session: _Session, message: Dict) -> Dict:
        updates = unwire_updates([message.get("update")])
        await self._run(self.serving.apply_update, updates[0])
        return {"version": getattr(self.serving.engine, "version", 0)}

    async def _op_reshard(self, session: _Session, message: Dict) -> Dict:
        """Reshard the served fleet online; subscribers ride through it.

        Runs on the pool like any write, so reads keep flowing during the
        build phase; the serving layer publishes the post-swap version
        with an empty delta (same contract as a retune).
        """
        shards = message.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards <= 0:
            raise ProtocolError(f"shards must be a positive integer, got {shards!r}")
        await self._run(self.serving.reshard, shards)
        engine = self.serving.engine
        return {
            "shards": getattr(engine, "shards", 1),
            "version": getattr(engine, "version", 0),
        }

    # -- snapshot paging ------------------------------------------------
    async def _op_snapshot_open(self, session: _Session, message: Dict) -> Dict:
        self.serving.check_writer()
        if len(session.snapshots) >= self.config.max_snapshots_per_session:
            raise ProtocolError(
                "session snapshot limit reached "
                f"({self.config.max_snapshots_per_session}); close one first"
            )
        snapshot = await self._run(self.serving.snapshot)
        self._next_snapshot += 1
        sid = self._next_snapshot
        session.snapshots[sid] = snapshot
        session.iterators[sid] = iter(snapshot.enumerate())
        return {"snap": sid, "version": snapshot.version}

    def _session_snapshot(self, session: _Session, message: Dict):
        sid = message.get("snap")
        snapshot = session.snapshots.get(sid)
        if snapshot is None:
            raise ProtocolError(f"unknown snapshot handle {sid!r}")
        return sid, snapshot

    async def _op_snapshot_page(self, session: _Session, message: Dict) -> Dict:
        sid, snapshot = self._session_snapshot(session, message)
        limit = int(message.get("limit", 100))
        if limit <= 0:
            raise ProtocolError(f"page limit must be positive, got {limit}")
        iterator = session.iterators[sid]

        def pull():
            page = []
            for pair in iterator:
                page.append(pair)
                if len(page) >= limit:
                    return page, False
            return page, True

        page, done = await self._run(pull)
        return {
            "snap": sid,
            "version": snapshot.version,
            "pairs": wire_pairs(page),
            "done": done,
        }

    async def _op_snapshot_lookup(self, session: _Session, message: Dict) -> Dict:
        sid, snapshot = self._session_snapshot(session, message)
        tup = unwire_tuple(message.get("tuple"))
        multiplicity = await self._run(snapshot.lookup, tup)
        return {"snap": sid, "version": snapshot.version, "multiplicity": multiplicity}

    async def _op_snapshot_close(self, session: _Session, message: Dict) -> Dict:
        sid, snapshot = self._session_snapshot(session, message)
        session.snapshots.pop(sid, None)
        session.iterators.pop(sid, None)
        await self._run(snapshot.close)
        return {"snap": sid, "closed": True}

    # -- subscriptions --------------------------------------------------
    async def _op_subscribe(self, session: _Session, message: Dict) -> Optional[Dict]:
        self.serving.check_writer()
        engine = self.serving.engine
        if getattr(engine, "mode", None) != "dynamic":
            raise UnsupportedQueryError(
                "subscriptions require a dynamic engine; this server fronts "
                f"a {getattr(engine, 'mode', 'unknown')!r}-mode engine with "
                "no per-commit delta capture"
            )
        requested = message.get("query")
        if requested is not None and coerce_query(requested) != engine.query:
            raise UnsupportedQueryError(
                f"this server serves {str(engine.query)!r}; subscribe to it "
                f"(got {requested!r})"
            )
        if len(self._subscribers) >= self.config.max_subscriptions:
            raise ProtocolError(
                f"subscription limit reached ({self.config.max_subscriptions})"
            )
        queue_size = self.config.subscriber_queue_size
        requested_queue = message.get("queue")
        if requested_queue is not None:
            queue_size = max(1, min(int(requested_queue), queue_size))
        self._next_subscription += 1
        sub = _Subscriber(self._next_subscription, session, queue_size)
        # Register FIRST, then read: every commit after this point is
        # queued, and the read observes at least every commit before it —
        # the client skips pushed versions <= the initial version, so the
        # overlap is deduplicated and there is no gap.
        self._subscribers[sub.sid] = sub
        session.subscribers[sub.sid] = sub
        self.stats.add("subscriptions_total")
        self.stats.add("subscribers_current")
        try:
            ticket = await self._run(self.serving.read)
        except BaseException:
            self._drop_subscriber(sub)
            raise
        await self._send(
            session,
            {
                "id": message.get("id"),
                "ok": True,
                "sub": sub.sid,
                "version": ticket.version,
                "result": wire_pairs(ticket.pairs),
            },
        )
        assert self._loop is not None
        sub.task = self._loop.create_task(self._subscription_sender(sub))
        return None  # response already sent (before the sender could race it)

    async def _op_subscribe_aggregate(
        self, session: _Session, message: Dict
    ) -> Optional[Dict]:
        """Open one aggregate subscription: full elements now, folded
        group deltas per commit after (see :meth:`_on_engine_commit`)."""
        self.serving.check_writer()
        engine = self.serving.engine
        if getattr(engine, "mode", None) != "dynamic":
            raise UnsupportedQueryError(
                "aggregate subscriptions require a dynamic engine; this "
                f"server fronts a {getattr(engine, 'mode', 'unknown')!r}-mode "
                "engine with no per-commit delta capture"
            )
        spec = AggregateSpec.from_wire(message.get("spec") or {})
        if len(self._subscribers) >= self.config.max_subscriptions:
            raise ProtocolError(
                f"subscription limit reached ({self.config.max_subscriptions})"
            )
        queue_size = self.config.subscriber_queue_size
        requested_queue = message.get("queue")
        if requested_queue is not None:
            queue_size = max(1, min(int(requested_queue), queue_size))
        self._next_subscription += 1
        sub = _Subscriber(self._next_subscription, session, queue_size, spec=spec)
        # Register subscriber AND spec first (one event-loop step, so the
        # committing thread either folds this spec for a commit or the
        # initial read below observes that commit), then read; the client
        # skips pushed versions <= the initial version, closing the overlap.
        self._subscribers[sub.sid] = sub
        session.subscribers[sub.sid] = sub
        entry = self._agg_specs.get(spec.key())
        if entry is None:
            self._agg_specs[spec.key()] = [spec, 1]
        else:
            entry[1] += 1
        self.stats.add("agg_subscriptions_total")
        self.stats.add("agg_subscribers_current")
        try:
            version, elements = await self._run(self.serving.aggregate, spec)
        except BaseException:
            self._drop_subscriber(sub)
            raise
        self.stats.add("aggregate_reads")
        await self._send(
            session,
            {
                "id": message.get("id"),
                "ok": True,
                "sub": sub.sid,
                "version": version,
                "result": _wire_elements(spec.ring, elements),
            },
        )
        assert self._loop is not None
        sub.task = self._loop.create_task(self._subscription_sender(sub))
        return None  # response already sent (before the sender could race it)

    async def _op_unsubscribe(self, session: _Session, message: Dict) -> Dict:
        sid = message.get("sub")
        sub = session.subscribers.get(sid)
        if sub is None:
            raise ProtocolError(f"unknown subscription {sid!r}")
        self._drop_subscriber(sub)
        return {"sub": sid, "closed": True}

    # -- introspection --------------------------------------------------
    async def _op_metrics(self, session: _Session, message: Dict) -> Dict:
        text = render_server_metrics(
            self.serving,
            self.stats.as_dict(),
            ring_deltas=self.stats.ring_deltas(),
        )
        return {"text": text}

    async def _op_stats(self, session: _Session, message: Dict) -> Dict:
        serving = self.serving.stats
        return {
            "net": self.stats.as_dict(),
            "serving": {
                "batches_applied": serving.batches_applied,
                "reads_served": serving.reads_served,
                "retunes_applied": serving.retunes_applied,
                "reshards_applied": serving.reshards_applied,
            },
            "shards": getattr(self.serving.engine, "shards", 1),
            "version": getattr(self.serving.engine, "version", 0),
            "latest_pushed_version": self.latest_version,
        }


class ServerThread:
    """Run an :class:`EngineTCPServer` on a dedicated event-loop thread.

    The blocking-world adapter used by :mod:`tools.serve`, the smoke test,
    and any test that drives the server from synchronous code::

        handle = ServerThread(serving_server).start()
        client = EngineClient("127.0.0.1", handle.port)
        ...
        handle.close()
    """

    def __init__(
        self, serving: EngineServer, config: Optional[ServerConfig] = None
    ) -> None:
        self.serving = serving
        self.config = config or ServerConfig()
        self.server: Optional[EngineTCPServer] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - startup hang
            raise RuntimeError("networked server did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop crash
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = EngineTCPServer(self.serving, self.config)
        try:
            await server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
