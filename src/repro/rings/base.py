"""The commutative-ring payload contract of aggregate views.

The engine's views have always carried one implicit payload type: the
tuple multiplicity, an element of the *counting ring* (ℤ, +, 0).  Every
layer that moves multiplicities around — delta propagation, heavy/light
routing, shard merging, subscription coalescing — only ever relies on
three properties of that payload:

* **associativity + commutativity** of addition: batched deltas may be
  consolidated in any grouping and any order;
* an **identity** element: an absent tuple is indistinguishable from a
  tuple carried at the identity;
* an **additive inverse**: a deletion is the insertion of the negated
  payload, so retractions ride the exact same code path as insertions.

:class:`Ring` makes that contract explicit so the same machinery can
maintain sums, minima/maxima, and sum-products next to plain counts.
Strictly the requirement is an *abelian group* per payload; the "ring"
name follows the provenance-semiring literature the design comes from
(K-relations), where ``lift`` is the valuation into the ring and tuple
multiplicity acts by scalar multiplication.

Concrete rings live in :mod:`repro.rings.library`; they register here so
wire protocols and shard commands can name a ring by string and
reconstruct it anywhere (:func:`get_ring`).  :func:`check_ring_laws` is
the property harness the unit tests and the fuzzer run against every
registered ring — a ring whose laws fail would silently corrupt every
maintained aggregate, so the laws are checked, not assumed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Sequence, Tuple


class Ring:
    """One commutative payload algebra (an abelian group with a lift).

    Elements are opaque to the engine: it only ever combines them through
    the methods below.  Implementations must keep elements immutable (or
    never mutate a value handed out), because maintained aggregate states
    and copy-on-write snapshots share them freely.
    """

    #: Registry name; also the wire identifier for shard/net commands.
    name: str = "abstract"

    def zero(self) -> Any:
        """The additive identity."""
        raise NotImplementedError

    def lift(self, value: Any, multiplicity: int) -> Any:
        """Valuate one result tuple's contribution at the given multiplicity.

        ``value`` is whatever the :class:`~repro.rings.spec.AggregateSpec`
        extracted from the result tuple (``None`` for count-style specs).
        ``lift(v, -m)`` must equal ``negate(lift(v, m))`` — deletions are
        negated insertions everywhere in the engine.
        """
        raise NotImplementedError

    def add(self, a: Any, b: Any) -> Any:
        """Combine two elements (associative, commutative)."""
        raise NotImplementedError

    def negate(self, a: Any) -> Any:
        """The additive inverse: ``add(a, negate(a))`` is ``zero()``."""
        raise NotImplementedError

    def is_zero(self, a: Any) -> bool:
        return a == self.zero()

    def answer(self, a: Any) -> Any:
        """The user-facing value of an element (e.g. Fraction → float)."""
        return a

    def combine(self, a: Any, b: Any) -> Any:
        """Merge two *partial aggregates* (per-shard merge = addition)."""
        return self.add(a, b)

    def to_wire(self, a: Any) -> Any:
        """JSON-safe encoding of an element (shard pipes, net frames)."""
        return a

    def from_wire(self, wire: Any) -> Any:
        """Inverse of :meth:`to_wire`."""
        return wire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ring({self.name})"


_RINGS: Dict[str, Ring] = {}


def register_ring(ring: Ring) -> Ring:
    """Register a ring under its ``name`` (last registration wins)."""
    _RINGS[ring.name] = ring
    return ring


def get_ring(ring: Any) -> Ring:
    """Resolve a ring instance or registered name to a :class:`Ring`."""
    if isinstance(ring, Ring):
        return ring
    try:
        return _RINGS[ring]
    except KeyError:
        raise KeyError(
            f"unknown ring {ring!r}; known: {', '.join(sorted(_RINGS))}"
        ) from None


def ring_names() -> Tuple[str, ...]:
    """All registered ring names, sorted."""
    return tuple(sorted(_RINGS))


def check_ring_laws(
    ring: Ring,
    samples: Sequence[Tuple[Any, int]],
    equal: Callable[[Any, Any], bool] = lambda a, b: a == b,
) -> None:
    """Assert the abelian-group laws over lifted ``(value, mult)`` samples.

    Checks associativity, commutativity, the identity, inverses, the
    lift's multiplicity-linearity, and the wire round-trip.  Raises
    ``AssertionError`` naming the first broken law.
    """
    elements = [ring.lift(value, mult) for value, mult in samples]
    zero = ring.zero()
    assert ring.is_zero(zero), f"{ring.name}: zero() is not is_zero()"
    for a in elements:
        assert equal(ring.add(a, zero), a), f"{ring.name}: identity law failed"
        assert ring.is_zero(ring.add(a, ring.negate(a))), (
            f"{ring.name}: inverse law failed for {a!r}"
        )
        assert equal(ring.from_wire(ring.to_wire(a)), a), (
            f"{ring.name}: wire round-trip changed {a!r}"
        )
    for a in elements:
        for b in elements:
            assert equal(ring.add(a, b), ring.add(b, a)), (
                f"{ring.name}: commutativity failed for {a!r}, {b!r}"
            )
            for c in elements:
                assert equal(
                    ring.add(ring.add(a, b), c), ring.add(a, ring.add(b, c))
                ), f"{ring.name}: associativity failed"
    for value, mult in samples:
        assert equal(
            ring.lift(value, -mult), ring.negate(ring.lift(value, mult))
        ), f"{ring.name}: lift({value!r}, -{mult}) is not the negated lift"


def fold_elements(ring: Ring, elements: Iterable[Any]) -> Any:
    """Fold elements with ``add`` starting from ``zero()``."""
    total = ring.zero()
    for element in elements:
        total = ring.add(total, element)
    return total
