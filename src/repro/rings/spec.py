"""Aggregate specifications and the maintained aggregate state.

An :class:`AggregateSpec` names *what* to aggregate over the query result:
a :class:`~repro.rings.base.Ring`, a value extractor over result tuples,
and a group-by key over the head variables.  The spec is a pure
description — it binds against a concrete query head on use, travels over
shard pipes and network frames in wire form (:meth:`AggregateSpec.to_wire`),
and has a canonical :meth:`AggregateSpec.key` so every layer that keeps a
registry of maintained aggregates deduplicates the same way.

:class:`MaintainedAggregate` is the O(1)-read state behind
``engine.aggregate()``: a :class:`~repro.data.relation.Relation` whose
tuples are the group keys, whose multiplicity is the group's *support*
(total result multiplicity — a group exists iff its support is positive),
and whose per-tuple payload (the PR-10 payload channel of both storage
backends) is the group's ring element.  Support and element are tracked
separately on purpose: a sum that cancels to the ring zero while tuples
remain in the group must still be reported with answer 0, and a group
whose support drains to 0 must disappear even when retraction left a
non-trivial element behind (it cannot, for lawful rings — but the support
is what makes that an invariant rather than an assumption).

The module-level folds (:func:`fold_result`, :func:`fold_delta`) are the
single definition of "aggregate of an enumeration": the oracle side of the
conformance checks, the ``maintained=False`` path, snapshot aggregation,
and resyncs of aggregate subscriptions all call them, so a maintained
answer is compared against the exact same fold everywhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.data.relation import Relation
from repro.data.schema import ValueTuple
from repro.exceptions import SchemaError
from repro.rings.base import Ring, get_ring

#: What a spec may extract from a result tuple: nothing (count-style),
#: one head variable (by name or position), a tuple of them (product
#: factors for the sum-product ring), or a local-only callable.
ValueSelector = Union[None, str, int, Tuple[Any, ...], Callable[[ValueTuple], Any]]

#: ``{group key: (support, ring element)}`` — the raw shape shared by the
#: maintained state, the folds, and per-shard partial aggregates.
Elements = Dict[ValueTuple, Tuple[int, Any]]


def _resolve_position(selector: Any, head: Tuple[str, ...]) -> int:
    """Map one head-variable selector (name or position) to a position."""
    if isinstance(selector, bool):
        raise SchemaError(f"invalid head selector {selector!r}")
    if isinstance(selector, int):
        if not -len(head) <= selector < len(head):
            raise SchemaError(
                f"head position {selector} out of range for head {head!r}"
            )
        return selector % len(head) if len(head) else selector
    if isinstance(selector, str):
        try:
            return head.index(selector)
        except ValueError:
            raise SchemaError(
                f"variable {selector!r} is not in the query head {head!r}"
            ) from None
    raise SchemaError(f"invalid head selector {selector!r}")


class AggregateSpec:
    """One aggregate over a query result: ring × value selector × group-by.

    ``value`` selects what each result tuple contributes (see
    :data:`ValueSelector`); ``group_by`` is a tuple of head variables (by
    name or position) forming the group key — ``()`` (the default) is the
    single global group.  Callable values work locally but cannot cross a
    process or network boundary (:meth:`to_wire` refuses).
    """

    __slots__ = ("ring", "value", "group_by")

    def __init__(
        self,
        ring: Union[Ring, str],
        value: ValueSelector = None,
        group_by: Optional[Iterable[Any]] = None,
    ) -> None:
        self.ring = get_ring(ring)
        if isinstance(value, list):
            value = tuple(value)
        self.value = value
        if group_by is None:
            self.group_by: Tuple[Any, ...] = ()
        elif isinstance(group_by, (str, int)):
            self.group_by = (group_by,)
        else:
            self.group_by = tuple(group_by)

    # ------------------------------------------------------------------
    # identity / wire form
    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Canonical identity for registries (same spec ⇒ same key)."""
        value = self.value
        if callable(value):
            value_key: Any = ("callable", id(value))
        elif isinstance(value, tuple):
            value_key = ("tuple", value)
        else:
            value_key = value
        return (self.ring.name, value_key, self.group_by)

    def describe(self) -> str:
        """Short human-readable form (used in relation names and errors)."""
        parts = [self.ring.name]
        if self.value is not None:
            parts.append(f"value={self.value!r}")
        if self.group_by:
            parts.append(f"by={self.group_by!r}")
        return " ".join(parts)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe form for shard commands and net frames."""
        value = self.value
        if callable(value):
            raise TypeError(
                "a callable aggregate value cannot cross a process or wire "
                "boundary; use a head variable name/position (or a tuple of "
                "them) instead"
            )
        wire_value: Any = list(value) if isinstance(value, tuple) else value
        return {
            "ring": self.ring.name,
            "value": wire_value,
            "group_by": list(self.group_by),
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "AggregateSpec":
        value = wire.get("value")
        if isinstance(value, list):
            value = tuple(value)
        return cls(wire["ring"], value, tuple(wire.get("group_by") or ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateSpec({self.describe()})"

    # ------------------------------------------------------------------
    # binding against a concrete head
    # ------------------------------------------------------------------
    def group_positions(self, head: Tuple[str, ...]) -> Tuple[int, ...]:
        """Resolve the group-by selectors to head positions."""
        return tuple(_resolve_position(g, head) for g in self.group_by)

    def value_extractor(self, head: Tuple[str, ...]) -> Callable[[ValueTuple], Any]:
        """Compile the value selector to a function over result tuples."""
        value = self.value
        if value is None:
            return lambda tup: None
        if callable(value):
            return value
        if isinstance(value, tuple):
            pos = tuple(_resolve_position(v, head) for v in value)
            return lambda tup: tuple(tup[p] for p in pos)
        position = _resolve_position(value, head)
        return lambda tup: tup[position]


# ----------------------------------------------------------------------
# folds — the single definition of "aggregate of an enumeration"
# ----------------------------------------------------------------------
def fold_delta(
    spec: AggregateSpec,
    head: Tuple[str, ...],
    pairs: Iterable[Tuple[ValueTuple, int]],
) -> Elements:
    """Net per-group ``(support delta, element delta)`` of a result delta.

    Keeps every group whose support delta or element delta is non-zero,
    so a delta that only moves the element (support-neutral churn inside
    a group) still reaches subscribers and maintained states.
    """
    ring = spec.ring
    positions = spec.group_positions(head)
    extract = spec.value_extractor(head)
    folded: Elements = {}
    zero = ring.zero()
    for tup, mult in pairs:
        group = tuple(tup[p] for p in positions)
        support, element = folded.get(group, (0, zero))
        folded[group] = (
            support + mult,
            ring.add(element, ring.lift(extract(tup), mult)),
        )
    return {
        group: (support, element)
        for group, (support, element) in folded.items()
        if support != 0 or not ring.is_zero(element)
    }


def fold_result(
    spec: AggregateSpec,
    head: Tuple[str, ...],
    pairs: Iterable[Tuple[ValueTuple, int]],
) -> Elements:
    """Fold a full result enumeration into ``{group: (support, element)}``.

    Result multiplicities are strictly positive, so every folded group has
    positive support; a zero *element* (a sum that cancels) is kept — the
    group exists and its answer is the ring's zero answer.
    """
    folded = fold_delta(spec, head, pairs)
    return {
        group: (support, element)
        for group, (support, element) in folded.items()
        if support != 0
    }


def answer_map(spec: AggregateSpec, elements: Elements) -> Dict[ValueTuple, Any]:
    """User-facing ``{group: answer}`` of raw elements."""
    ring = spec.ring
    return {
        group: ring.answer(element)
        for group, (_support, element) in elements.items()
    }


# ----------------------------------------------------------------------
# the maintained state
# ----------------------------------------------------------------------
class MaintainedAggregate:
    """Relation-backed aggregate state maintained from result deltas.

    The backing relation stores one tuple per live group: multiplicity is
    the support, the payload channel carries the ring element.  Reads are
    O(groups); each commit's result delta is absorbed in O(delta).
    """

    __slots__ = ("spec", "head", "ring", "state", "_positions", "_extract")

    def __init__(self, spec: AggregateSpec, head: Iterable[str]) -> None:
        self.spec = spec
        self.head = tuple(head)
        self.ring = spec.ring
        self._positions = spec.group_positions(self.head)
        self._extract = spec.value_extractor(self.head)
        schema = tuple(f"g{i}" for i in range(len(self._positions)))
        self.state = Relation(f"agg[{spec.describe()}]", schema)

    # ------------------------------------------------------------------
    def rebuild(self, pairs: Iterable[Tuple[ValueTuple, int]]) -> None:
        """Reinitialize from a full result enumeration (one O(result) fold)."""
        self.state.clear()
        self.on_delta(pairs)

    def on_delta(self, pairs: Iterable[Tuple[ValueTuple, int]]) -> None:
        """Absorb one result delta (or any additive slice of one).

        Folds the delta per group first, then touches the state once per
        group: the net support delta can never drive a group's support
        negative (result multiplicities are non-negative), so the
        relation's over-delete rejection doubles as a corruption tripwire.
        """
        state = self.state
        ring = self.ring
        for group, (support_delta, element_delta) in fold_delta(
            self.spec, self.head, pairs
        ).items():
            old = state.payload_of(group)
            element = ring.add(old, element_delta) if old is not None else element_delta
            support = state.apply_delta(group, support_delta)
            if support != 0:
                state.set_payload(group, element)

    # ------------------------------------------------------------------
    def elements(self) -> Elements:
        """Raw ``{group: (support, element)}`` (shard-merge / wire shape)."""
        state = self.state
        zero = self.ring.zero()
        return {
            group: (support, state.payload_of(group, zero))
            for group, support in state.items()
        }

    def answers(self) -> Dict[ValueTuple, Any]:
        """User-facing ``{group: answer}`` at the current version."""
        ring = self.ring
        state = self.state
        zero = ring.zero()
        return {
            group: ring.answer(state.payload_of(group, zero))
            for group in state
        }

    def group_count(self) -> int:
        return len(self.state)
