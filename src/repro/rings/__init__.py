"""Commutative-ring payloads for aggregate views (see ``docs`` §16).

``base`` defines the :class:`Ring` contract, the registry, and the law
checker; ``library`` ships the concrete rings (counting, sum, min/max,
sum-product) and registers them on import; ``spec`` defines
:class:`AggregateSpec` — what to aggregate — and the Relation-backed
:class:`MaintainedAggregate` state behind ``engine.aggregate()``.
"""

from repro.rings.base import (
    Ring,
    check_ring_laws,
    fold_elements,
    get_ring,
    register_ring,
    ring_names,
)
from repro.rings.library import (
    COUNTING,
    MAX,
    MIN,
    SUM,
    SUM_PRODUCT,
    CountingRing,
    MaxRing,
    MinRing,
    SumProductRing,
    SumRing,
)
from repro.rings.spec import (
    AggregateSpec,
    MaintainedAggregate,
    answer_map,
    fold_delta,
    fold_result,
)

__all__ = [
    "AggregateSpec",
    "COUNTING",
    "CountingRing",
    "MAX",
    "MIN",
    "MaintainedAggregate",
    "MaxRing",
    "MinRing",
    "Ring",
    "SUM",
    "SUM_PRODUCT",
    "SumProductRing",
    "SumRing",
    "answer_map",
    "check_ring_laws",
    "fold_delta",
    "fold_elements",
    "fold_result",
    "get_ring",
    "register_ring",
    "ring_names",
]
