"""The concrete ring library: counting, sum, min/max, sum-product.

Every ring here is an *invertible* abelian group, which is what lets the
engine maintain aggregates from first-order result deltas alone — a
retraction is the insertion of the negated element, no re-enumeration
needed:

* :class:`CountingRing` — plain integers; ``lift(_, m) = m``.  This is
  the payload the engine has always carried implicitly, so an engine
  annotated with it must be byte-identical to the pre-ring engine.
* :class:`SumRing` — sums of extracted values.  Integer values stay
  ``int``; the first ``float`` switches the element to an exact
  ``fractions.Fraction`` (every binary float is an exact rational), so
  cancellation under heavy insert/delete churn is *exact* and the
  maintained sum is order-independent — ``aggregate()`` equals the fold
  over any enumeration order down to the last bit.  ``answer()`` renders
  a Fraction back as ``float``.
* :class:`MinRing` / :class:`MaxRing` — the retraction-hard aggregates.
  ``min``/``max`` have no inverse, so the element is a support multiset
  ``{value: count}``: retraction decrements a count and drops the value
  at zero, and ``answer()`` re-derives the extremum over the surviving
  values (the *bounded repair* strategy — repair cost is the number of
  distinct live values in the group, never a full re-enumeration).
  Mixed value types order by a canonical type tag, mirroring the
  enumeration merge order of :mod:`repro.enumeration.union`.
* :class:`SumProductRing` — the matmul payload: the spec extracts a
  *tuple* of factors and ``lift`` multiplies them (exactly, via the same
  Fraction escape hatch) before scaling by the multiplicity.  This is
  the (+, ×) semiring restricted to the additive group the maintenance
  path needs; ``workloads/matrix.py``'s C[i,k] = Σⱼ A[i,j]·B[j,k] is a
  grouped sum-product aggregate under it.

All four register with :mod:`repro.rings.base` at import time.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Tuple

from repro.rings.base import Ring, register_ring


def _exact(value: Any) -> Any:
    """Map a numeric value to its exact additive representation."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        return Fraction(value)  # exact: binary floats are rationals
    if isinstance(value, (int, Fraction)):
        return value
    raise TypeError(
        f"sum-style rings need numeric values, got {type(value).__name__}: "
        f"{value!r}"
    )


def _render(total: Any) -> Any:
    """User-facing number: Fractions picked up from floats render as float."""
    if isinstance(total, Fraction):
        return float(total)
    return total


def _wire_number(value: Any) -> Any:
    if isinstance(value, Fraction):
        # numerator/denominator as strings: arbitrary precision survives
        # JSON, which would silently round large ints through float64
        return ["F", str(value.numerator), str(value.denominator)]
    return value


def _unwire_number(wire: Any) -> Any:
    if isinstance(wire, (list, tuple)) and len(wire) == 3 and wire[0] == "F":
        return Fraction(int(wire[1]), int(wire[2]))
    return wire


class CountingRing(Ring):
    """Tuple multiplicities under (ℤ, +, 0) — the engine's native payload."""

    name = "counting"

    def zero(self) -> int:
        return 0

    def lift(self, value: Any, multiplicity: int) -> int:
        return multiplicity

    def add(self, a: int, b: int) -> int:
        return a + b

    def negate(self, a: int) -> int:
        return -a

    def is_zero(self, a: int) -> bool:
        return a == 0


class SumRing(Ring):
    """Sum of extracted numeric values, exact under cancellation."""

    name = "sum"

    def zero(self) -> int:
        return 0

    def lift(self, value: Any, multiplicity: int) -> Any:
        return _exact(value) * multiplicity

    def add(self, a: Any, b: Any) -> Any:
        return a + b

    def negate(self, a: Any) -> Any:
        return -a

    def is_zero(self, a: Any) -> bool:
        return a == 0

    def answer(self, a: Any) -> Any:
        return _render(a)

    def to_wire(self, a: Any) -> Any:
        return _wire_number(a)

    def from_wire(self, wire: Any) -> Any:
        return _unwire_number(wire)


def _order_key(value: Any) -> Tuple:
    """Total order over mixed-type values (numbers first, then by type name).

    The same type-tagged ordering the canonical enumeration merge uses, so
    a min/max answer is deterministic no matter which shard or engine
    produced the supporting values.
    """
    if isinstance(value, bool):
        return ("num", int(value))
    if isinstance(value, (int, float, Fraction)):
        return ("num", value)
    return (type(value).__name__, value)


class _ExtremumRing(Ring):
    """Shared support-multiset machinery of :class:`MinRing`/:class:`MaxRing`.

    Elements are immutable-by-convention dicts ``{value: count}``.  ``add``
    allocates a fresh dict, so shared elements are never mutated in place.
    """

    _pick_max = False

    def zero(self) -> Dict[Any, int]:
        return {}

    def lift(self, value: Any, multiplicity: int) -> Dict[Any, int]:
        if value is None:
            raise TypeError(
                f"the {self.name} ring needs a value extracted from the "
                "result tuple; pass value=<head variable or position>"
            )
        if multiplicity == 0:
            return {}
        return {value: multiplicity}

    def add(self, a: Dict[Any, int], b: Dict[Any, int]) -> Dict[Any, int]:
        if not b:
            return a
        if not a:
            return b
        merged = dict(a)
        for value, count in b.items():
            updated = merged.get(value, 0) + count
            if updated:
                merged[value] = updated
            else:
                del merged[value]
        return merged

    def negate(self, a: Dict[Any, int]) -> Dict[Any, int]:
        return {value: -count for value, count in a.items()}

    def is_zero(self, a: Dict[Any, int]) -> bool:
        return not a

    def answer(self, a: Dict[Any, int]) -> Any:
        if not a:
            return None
        # re-derivation on retraction: the extremum is recomputed over the
        # surviving support values — bounded by distinct values, never by
        # result size
        if self._pick_max:
            return max(a, key=_order_key)
        return min(a, key=_order_key)

    def to_wire(self, a: Dict[Any, int]) -> List[List[Any]]:
        return [
            [_wire_number(value), count]
            for value, count in sorted(a.items(), key=lambda kv: _order_key(kv[0]))
        ]

    def from_wire(self, wire: Any) -> Dict[Any, int]:
        return {_unwire_number(value): count for value, count in wire}


class MinRing(_ExtremumRing):
    """Minimum of extracted values with support-counted retraction."""

    name = "min"
    _pick_max = False


class MaxRing(_ExtremumRing):
    """Maximum of extracted values with support-counted retraction."""

    name = "max"
    _pick_max = True


class SumProductRing(SumRing):
    """Σ over result tuples of (Π extracted factors) · multiplicity."""

    name = "sum_product"

    def lift(self, value: Any, multiplicity: int) -> Any:
        if not isinstance(value, (tuple, list)):
            value = (value,)
        product: Any = multiplicity
        for factor in value:
            product = product * _exact(factor)
        return product


COUNTING = register_ring(CountingRing())
SUM = register_ring(SumRing())
MIN = register_ring(MinRing())
MAX = register_ring(MaxRing())
SUM_PRODUCT = register_ring(SumProductRing())
