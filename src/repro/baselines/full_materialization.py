"""Baseline: eager full materialization of the query result.

This is the ε = 1 corner of the paper's trade-off space restated as its own
engine (and the behaviour of prior work on arbitrary conjunctive queries
[45, 42]): spend ``O(N^w)`` preprocessing to materialize the result with an
index, then enumerate with constant delay and maintain the result with delta
queries on updates.  Unlike :class:`FirstOrderIVMEngine` it reports the size
of the materialized result so the space dimension of Figures 4 and 5 can be
reproduced as well.  Complexity: ``O(N^w)`` preprocessing and space,
``O(1)`` delay, delta-query updates (at least linear for non-q-hierarchical
queries); batches are inherited from the first-order engine (one delta query
per batch relation group).

Usage::

    from repro.baselines import FullMaterializationEngine
    from repro.workloads import path_query_database

    engine = FullMaterializationEngine("Q(A, C) = R(A, B), S(B, C)")
    engine.load(path_query_database(100, seed=1))
    print(engine.materialized_size())        # |Q(D)| distinct result tuples
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.first_order_ivm import FirstOrderIVMEngine
from repro.data.schema import ValueTuple


class FullMaterializationEngine(FirstOrderIVMEngine):
    """Eagerly materialized result with delta maintenance (ε = 1 analogue)."""

    name = "full-materialization"

    def materialized_size(self) -> int:
        """Number of distinct tuples stored in the materialized result."""
        self._require_loaded()
        return len(self._result)
