"""Common scaffolding for baseline engines.

Baselines implement the same external interface as
:class:`repro.core.api.HierarchicalEngine` — ``load``, ``update`` /
``apply`` / ``apply_stream``, ``enumerate``, ``result`` — so the benchmark
harness can swap them in and out when reproducing the comparison tables
(Figures 4 and 5 of the paper).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.core.planner import coerce_query
from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update
from repro.exceptions import ReproError


class BaselineEngine:
    """Abstract base class of the baseline evaluation strategies."""

    name = "baseline"

    def __init__(self, query, copy_database: bool = True) -> None:
        self.query = coerce_query(query)
        self.copy_database = copy_database
        self.database: Optional[Database] = None
        self.preprocessing_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    def load(self, database: Database) -> "BaselineEngine":
        """Run the baseline's preprocessing stage."""
        self.database = database.copy() if self.copy_database else database
        started = time.perf_counter()
        self._preprocess()
        self.preprocessing_seconds = time.perf_counter() - started
        return self

    def _require_loaded(self) -> None:
        if self.database is None:
            raise ReproError("the engine has no database; call load() first")

    # -- hooks ---------------------------------------------------------------
    def _preprocess(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _apply_update(self, update: Update) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def update(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        self.apply(Update(relation, tuple(tup), multiplicity))

    def apply(self, update: Update) -> None:
        self._require_loaded()
        self._apply_update(update)

    def apply_stream(self, updates: Iterable[Update]) -> None:
        for update in updates:
            self.apply(update)

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the result as ``{tuple: multiplicity}``."""
        return {tup: mult for tup, mult in self.enumerate()}

    def count_distinct(self) -> int:
        return sum(1 for _ in self.enumerate())

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return self.enumerate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.query!s})"
