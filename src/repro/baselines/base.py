"""Common scaffolding for baseline engines.

Baselines implement the same external interface as
:class:`repro.core.api.HierarchicalEngine` — ``load``, ``update`` /
``apply`` / ``apply_stream`` / ``apply_batch``, ``enumerate``, ``result`` —
so the benchmark harness can swap them in and out when reproducing the
comparison tables (Figures 4 and 5 of the paper), and so batched-ingestion
comparisons stay apples-to-apples across all engines.

Subclasses implement three hooks: ``_preprocess`` (build whatever state the
strategy maintains), ``_apply_update`` (absorb one single-tuple update), and
optionally ``_apply_batch`` (absorb one consolidated
:class:`~repro.data.update.UpdateBatch`; the default replays the batch's net
updates through ``_apply_update``, which already benefits from cancelled
insert/delete pairs).

Usage::

    from repro.baselines import NaiveRecomputeEngine
    from repro.workloads import mixed_stream, path_query_database

    database = path_query_database(100, seed=1)
    engine = NaiveRecomputeEngine("Q(A, C) = R(A, B), S(B, C)")
    engine.load(database)
    engine.apply_stream(mixed_stream(database, 50, seed=2), batch_size=10)
    print(len(engine.result()))
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.core.planner import coerce_query
from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch, as_batch, iter_batches
from repro.exceptions import ReproError


class BaselineEngine:
    """Abstract base class of the baseline evaluation strategies."""

    name = "baseline"

    def __init__(self, query, copy_database: bool = True) -> None:
        self.query = coerce_query(query)
        self.copy_database = copy_database
        self.database: Optional[Database] = None
        self.preprocessing_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    def load(self, database: Database) -> "BaselineEngine":
        """Run the baseline's preprocessing stage."""
        self.database = database.copy() if self.copy_database else database
        started = time.perf_counter()
        self._preprocess()
        self.preprocessing_seconds = time.perf_counter() - started
        return self

    def _require_loaded(self) -> None:
        if self.database is None:
            raise ReproError("the engine has no database; call load() first")

    # -- hooks ---------------------------------------------------------------
    def _preprocess(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _apply_update(self, update: Update) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _apply_batch(self, batch: UpdateBatch) -> None:
        """Absorb one consolidated batch; default replays the net updates.

        The batch is validated against the current base relations first, so
        an over-deleting entry rejects the whole batch before any replayed
        update has touched engine state.
        """
        batch.validate_against(self.database)
        for update in batch.updates():
            self._apply_update(update)

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def update(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        self.apply(Update(relation, tuple(tup), multiplicity))

    def apply(self, update: Update) -> None:
        self._require_loaded()
        self._apply_update(update)

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[Update]]) -> None:
        """Consolidate ``updates`` into a net-effect batch and absorb it."""
        self._require_loaded()
        self._apply_batch(as_batch(updates))

    def apply_stream(
        self, updates: Iterable[Update], batch_size: Optional[int] = None
    ) -> None:
        """Apply a stream one by one, or in consolidated batches of ``batch_size``."""
        if batch_size is not None:
            for batch in iter_batches(updates, batch_size):
                self.apply_batch(batch)
            return
        for update in updates:
            self.apply(update)

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the result as ``{tuple: multiplicity}``."""
        return {tup: mult for tup, mult in self.enumerate()}

    def count_distinct(self) -> int:
        return sum(1 for _ in self.enumerate())

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return self.enumerate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.query!s})"
