"""Baseline evaluation strategies used in the comparison benchmarks."""

from repro.baselines.base import BaselineEngine
from repro.baselines.first_order_ivm import FirstOrderIVMEngine
from repro.baselines.free_connex import FreeConnexEngine
from repro.baselines.full_materialization import FullMaterializationEngine
from repro.baselines.naive import NaiveRecomputeEngine

__all__ = [
    "BaselineEngine",
    "FirstOrderIVMEngine",
    "FreeConnexEngine",
    "FullMaterializationEngine",
    "NaiveRecomputeEngine",
]
