"""Baseline evaluation strategies used in the comparison benchmarks.

Each baseline mirrors one row of the paper's Figures 4 and 5 and speaks the
same interface as :class:`repro.core.api.HierarchicalEngine` — including
batched ingestion via ``apply_batch`` / ``apply_stream(batch_size=...)`` —
so every engine in a comparison consumes identical update streams and
identical consolidated batches.
"""

from repro.baselines.base import BaselineEngine
from repro.baselines.first_order_ivm import FirstOrderIVMEngine
from repro.baselines.free_connex import FreeConnexEngine
from repro.baselines.full_materialization import FullMaterializationEngine
from repro.baselines.naive import NaiveRecomputeEngine

__all__ = [
    "BaselineEngine",
    "FirstOrderIVMEngine",
    "FreeConnexEngine",
    "FullMaterializationEngine",
    "NaiveRecomputeEngine",
]
