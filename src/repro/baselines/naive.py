"""Baseline: full recomputation on every update.

This is the conceptually simplest dynamic strategy — after each single-tuple
update, recompute the full query result from scratch and keep it in a hash
index.  Preprocessing and update both cost a full join (``O(N^w)`` in the
worst case for width-``w`` queries), while enumeration is constant-delay from
the materialized result.  It anchors the "no incremental maintenance" corner
of the Figure 5 comparison and doubles as the ground-truth oracle in tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.base import BaselineEngine
from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update
from repro.engine.evaluator import evaluate_query_naive


class NaiveRecomputeEngine(BaselineEngine):
    """Recompute-from-scratch evaluation (static and dynamic)."""

    name = "recompute"

    def _preprocess(self) -> None:
        self._result = evaluate_query_naive(self.query, self.database)

    def _apply_update(self, update: Update) -> None:
        self.database.relation(update.relation).apply_delta(
            update.tuple, update.multiplicity
        )
        self._result = evaluate_query_naive(self.query, self.database)

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._require_loaded()
        return iter(self._result.items())
