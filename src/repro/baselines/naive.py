"""Baseline: full recomputation on every update.

This is the conceptually simplest dynamic strategy — after each single-tuple
update, recompute the full query result from scratch and keep it in a hash
index.  Preprocessing and update both cost a full join (``O(N^w)`` in the
worst case for width-``w`` queries), while enumeration is constant-delay from
the materialized result.  It anchors the "no incremental maintenance" corner
of the Figure 5 comparison and doubles as the ground-truth oracle in tests.

Batching is where recomputation catches up in practice: a batch applies all
net deltas first and recomputes *once*, so the amortized per-tuple cost drops
from ``O(N^w)`` to ``O(N^w / b)`` for batch size ``b`` — the classical
argument for why full-refresh systems ingest in large batches.

Usage::

    from repro.baselines import NaiveRecomputeEngine
    from repro.workloads import mixed_stream, path_query_database

    database = path_query_database(100, seed=1)
    engine = NaiveRecomputeEngine("Q(A, C) = R(A, B), S(B, C)")
    engine.load(database)
    engine.apply_batch(mixed_stream(database, 50, seed=2))  # one recompute
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.base import BaselineEngine
from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch
from repro.engine.evaluator import evaluate_query_naive


class NaiveRecomputeEngine(BaselineEngine):
    """Recompute-from-scratch evaluation (static and dynamic)."""

    name = "recompute"

    def _preprocess(self) -> None:
        self._result = evaluate_query_naive(self.query, self.database)

    def _apply_update(self, update: Update) -> None:
        self.database.relation(update.relation).apply_delta(
            update.tuple, update.multiplicity
        )
        self._result = evaluate_query_naive(self.query, self.database)

    def _apply_batch(self, batch: UpdateBatch) -> None:
        batch.apply_to(self.database)
        self._result = evaluate_query_naive(self.query, self.database)

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._require_loaded()
        return iter(self._result.items())
