"""Baseline: classical first-order incremental view maintenance.

Classical IVM ([16] in the paper) materializes the query result and, on a
single-tuple update ``δR``, computes the *delta query* — the original query
with the updated atom replaced by the single-tuple delta — against the
current database, then merges it into the materialized result.  There is no
view hierarchy and no skew awareness: the delta query can touch ``O(N^{δ})``
(or worse) intermediate tuples for non-q-hierarchical queries, which is
exactly the "at least linear-time updates" behaviour the paper contrasts
against (Section 1 and Figure 5).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.base import BaselineEngine
from repro.data.schema import ValueTuple
from repro.data.update import Update
from repro.engine.evaluator import evaluate_query_naive
from repro.engine.join import BoundRelation, delta_join


class FirstOrderIVMEngine(BaselineEngine):
    """Materialized result maintained with first-order delta queries."""

    name = "first-order-ivm"

    def _preprocess(self) -> None:
        self._result = evaluate_query_naive(self.query, self.database)

    def _apply_update(self, update: Update) -> None:
        atom = self.query.atom_for_relation(update.relation)
        if atom is None:
            raise KeyError(
                f"relation {update.relation!r} does not occur in {self.query}"
            )
        siblings = [
            BoundRelation(other.variables, self.database.relation(other.relation))
            for other in self.query.atoms
            if other is not atom
        ]
        delta = delta_join(
            atom.variables,
            {update.tuple: update.multiplicity},
            siblings,
            tuple(self.query.head),
        )
        # apply the delta to the materialized result, then to the base relation
        for tup, mult in delta.items():
            if mult != 0:
                self._result.apply_delta(tup, mult)
        self.database.relation(update.relation).apply_delta(
            update.tuple, update.multiplicity
        )

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._require_loaded()
        return iter(self._result.items())
