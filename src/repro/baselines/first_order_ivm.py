"""Baseline: classical first-order incremental view maintenance.

Classical IVM ([16] in the paper) materializes the query result and, on a
single-tuple update ``δR``, computes the *delta query* — the original query
with the updated atom replaced by the single-tuple delta — against the
current database, then merges it into the materialized result.  There is no
view hierarchy and no skew awareness: the delta query can touch ``O(N^{δ})``
(or worse) intermediate tuples for non-q-hierarchical queries, which is
exactly the "at least linear-time updates" behaviour the paper contrasts
against (Section 1 and Figure 5).  Complexity vs. the main engine:
``O(N^{w})`` preprocessing (a full join), ``O(1)`` enumeration delay from
the materialized result, and updates that are at least linear for
non-q-hierarchical queries — IVM^ε instead guarantees ``O(N^{δε})``
amortized updates at the price of ``O(N^{1−ε})`` delay.

Batched ingestion evaluates one delta query per batch *relation group*
(the grouped delta joined with the other relations' current state), which
is the natural batching of classical IVM and what makes the comparison
with the engine's batch path apples-to-apples.

Usage::

    from repro.baselines import FirstOrderIVMEngine
    from repro.workloads import path_query_database

    engine = FirstOrderIVMEngine("Q(A, C) = R(A, B), S(B, C)")
    engine.load(path_query_database(100, seed=1))
    engine.update("R", (1, 2), +1)           # one delta query
    engine.apply_batch([...])                # one delta query per relation
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.base import BaselineEngine
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch
from repro.engine.evaluator import evaluate_query_naive
from repro.engine.join import BoundRelation, delta_join
from repro.exceptions import RejectedUpdateError


class FirstOrderIVMEngine(BaselineEngine):
    """Materialized result maintained with first-order delta queries."""

    name = "first-order-ivm"

    def _preprocess(self) -> None:
        self._result = evaluate_query_naive(self.query, self.database)

    def _apply_update(self, update: Update) -> None:
        self._apply_relation_delta(
            update.relation, {update.tuple: update.multiplicity}
        )

    def _apply_batch(self, batch: UpdateBatch) -> None:
        # One delta query per relation group: processing groups sequentially
        # keeps the delta rule exact (each group joins against the state that
        # already includes every previously processed group), so the final
        # result matches the one-by-one replay.  Validating the whole batch
        # first keeps rejection atomic across relation groups.
        batch.validate_against(self.database)
        for relation in batch.relations():
            self._apply_relation_delta(relation, dict(batch.delta_for(relation)))

    def _apply_relation_delta(self, relation: str, group: Dict[ValueTuple, int]) -> None:
        atom = self.query.atom_for_relation(relation)
        if atom is None:
            raise KeyError(
                f"relation {relation!r} does not occur in {self.query}"
            )
        # Reject over-deletes before any state is touched: the delta query is
        # merged into the materialized result *before* the base relation
        # absorbs the group, so a late rejection would leave the two
        # inconsistent.
        base = self.database.relation(relation)
        for tup, mult in group.items():
            if mult < 0 and base.multiplicity(tup) + mult < 0:
                raise RejectedUpdateError(
                    f"delete of {-mult} copies of {tup!r} rejected: relation "
                    f"{relation!r} holds only {base.multiplicity(tup)}; "
                    "no state was modified"
                )
        siblings = [
            BoundRelation(other.variables, self.database.relation(other.relation))
            for other in self.query.atoms
            if other is not atom
        ]
        delta = delta_join(
            atom.variables,
            group,
            siblings,
            tuple(self.query.head),
        )
        # apply the delta to the materialized result, then to the base relation
        for tup, mult in delta.items():
            if mult != 0:
                self._result.apply_delta(tup, mult)
        for tup, mult in group.items():
            base.apply_delta(tup, mult)

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._require_loaded()
        return iter(self._result.items())
