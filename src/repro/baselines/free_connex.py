"""Baseline: linear-preprocessing engine for free-connex / q-hierarchical queries.

DynYannakakis [25] and F-IVM [42] achieve, for free-connex (respectively
q-hierarchical) queries, linear-time preprocessing, constant enumeration
delay, and — for q-hierarchical queries — constant update time, by keeping a
hierarchy of views shaped by the query structure rather than materializing
the result.  That is exactly what the paper's ``BuildVT`` construction does,
so this baseline wraps the library's own engine pinned at ε = 1 (where the
free-connex view trees degenerate to the classical constructions) and
refuses queries outside the class, which is how the corresponding rows of
Figures 4 and 5 are reproduced.  Complexity: ``O(N)`` preprocessing,
``O(1)`` delay, and ``O(1)`` amortized updates exactly for q-hierarchical
queries (``supports_constant_updates``); batches are delegated to the
wrapped engine's batched ingestion path, so all engines in a comparison
consume identical consolidated batches.

Usage::

    from repro.baselines import FreeConnexEngine
    from repro.workloads import path_query_database

    engine = FreeConnexEngine("Q(A, B) = R(A, B), S(B, C)")  # q-hierarchical
    engine.load(path_query_database(100, seed=1))
    engine.supports_constant_updates         # True
    engine.apply_batch([...])                # delegated to IVM^ε at ε = 1
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.baselines.base import BaselineEngine
from repro.core.api import HierarchicalEngine
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch
from repro.exceptions import UnsupportedQueryError
from repro.query.classes import is_q_hierarchical
from repro.query.hypergraph import is_free_connex


class FreeConnexEngine(BaselineEngine):
    """DynYannakakis / F-IVM-style engine for free-connex hierarchical queries."""

    name = "free-connex-views"

    def __init__(self, query, copy_database: bool = True, dynamic: bool = True) -> None:
        super().__init__(query, copy_database=copy_database)
        if not is_free_connex(self.query):
            raise UnsupportedQueryError(
                f"{self.query} is not free-connex; this baseline only covers the "
                "free-connex rows of Figures 4 and 5"
            )
        self.dynamic = dynamic
        self._supports_constant_updates = is_q_hierarchical(self.query)

    def _preprocess(self) -> None:
        mode = "dynamic" if self.dynamic else "static"
        self._engine = HierarchicalEngine(
            self.query, epsilon=1.0, mode=mode, copy_database=False
        )
        self._engine.load(self.database)

    def _apply_update(self, update: Update) -> None:
        self._engine.apply(update)

    def _apply_batch(self, batch: UpdateBatch) -> None:
        self._engine.apply_batch(batch)

    def enumerate(self) -> Iterator[Tuple[ValueTuple, int]]:
        self._require_loaded()
        return iter(self._engine.enumerate())

    @property
    def supports_constant_updates(self) -> bool:
        """True exactly for q-hierarchical queries (the Figure 5 top row)."""
        return self._supports_constant_updates
