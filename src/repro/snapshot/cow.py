"""Copy-on-write capture of relation contents.

A snapshot must observe the engine exactly as it was at capture time while
maintenance keeps mutating the same :class:`~repro.data.relation.Relation`
objects in place.  Copying every relation at capture would make ``snapshot()``
cost ``O(state)``; instead the tracker freezes relations lazily, from
whichever side touches them first:

* **writer side** — every relation reachable from a snapshot carries a
  ``_cow`` pointer to its engine's :class:`CowTracker`.  The first mutation
  after a capture (the relation's ``_cow_epoch`` trails the tracker's
  ``epoch``) calls :meth:`CowTracker.preserve`, which stores a frozen copy of
  the *pre-mutation* content into every active snapshot that does not hold
  one yet.  Later mutations in the same epoch skip the tracker entirely, so
  the steady-state overhead per mutation is one attribute load and one int
  comparison;
* **reader side** — a snapshot read resolves a relation through
  :meth:`CowTracker.freeze`.  If the writer already preserved it, the frozen
  copy is returned; otherwise the relation provably has not changed since the
  capture (the writer guard fires on the *first* post-capture mutation), so
  copying its current content under the tracker lock yields exactly the
  capture-time state.

Frozen copies are cached per relation keyed by its ``_change_ticks`` mutation
counter, so consecutive snapshots of a quiescent relation share one copy
instead of re-copying per capture.  The cache lives on the relation object
itself (``_cow_cache``), which sidesteps ``id()`` aliasing after major
rebalances replace view relations and lets dead relations take their cache
entries with them.

Thread-safety relies on the tracker lock plus CPython's GIL: the lock makes
"check whether a frozen copy exists, else copy the content" atomic against
the writer guard (``Relation.copy`` runs entirely under the lock).  Captures
(:meth:`CowTracker.capture`) must not run concurrently with a mutating call —
:class:`repro.core.serving.EngineServer` serializes capture against its
writer for exactly this reason.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Dict, Iterable, List, Optional

from repro.data.relation import Relation

# Epochs are globally unique so a relation that survives an ``engine.load()``
# (``copy_database=False``) can never collide with a fresh tracker's epoch
# through its stale ``_cow_epoch`` field.
_EPOCHS = itertools.count(1)


def frozen_copy(relation: Relation) -> Relation:
    """Return an immutable-by-convention copy of ``relation``'s content.

    Reuses the relation's cached copy when the content has not changed since
    the cache entry was made.  Must be called under the tracker lock.
    """
    cached = relation._cow_cache
    if cached is not None and cached[0] == relation._change_ticks:
        return cached[1]
    clone = relation.copy()
    relation._cow_cache = (relation._change_ticks, clone)
    return clone


class SnapshotState:
    """The frozen overlay of one snapshot: live relation → frozen copy."""

    def __init__(self) -> None:
        # Keyed by the live Relation object (identity hash): id() reuse after
        # garbage collection could alias two different relations, an object
        # key cannot.
        self.frozen: Dict[Relation, Relation] = {}
        self.closed = False


class CowTracker:
    """Per-engine coordinator between one writer and any number of snapshots."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.epoch = next(_EPOCHS)
        self._active: List["weakref.ref[SnapshotState]"] = []

    # -- capture (snapshot side, serialized against writes by the caller) ---
    def capture(self, relations: Iterable[Relation]) -> SnapshotState:
        """Open a new snapshot over ``relations`` and bump the epoch.

        Cost is ``O(#relations)`` bookkeeping — no content is copied here.
        """
        state = SnapshotState()
        with self.lock:
            self.epoch = next(_EPOCHS)
            self._active = [
                ref for ref in self._active if self._live(ref) is not None
            ]
            self._active.append(weakref.ref(state))
            for relation in relations:
                if relation._cow is not self:
                    relation._cow = self
                    relation._cow_epoch = -1
        return state

    @staticmethod
    def _live(ref: "weakref.ref[SnapshotState]") -> Optional[SnapshotState]:
        state = ref()
        if state is None or state.closed:
            return None
        return state

    def release(self, state: SnapshotState) -> None:
        """Close a snapshot so the writer stops preserving into it."""
        with self.lock:
            state.closed = True
            state.frozen = {}
            self._active = [
                ref for ref in self._active if self._live(ref) is not None
            ]

    # -- writer side --------------------------------------------------------
    def preserve(self, relation: Relation) -> None:
        """Store ``relation``'s current content into every open snapshot.

        Called by :meth:`repro.data.relation.Relation._cow_guard` immediately
        *before* the first mutation of a new epoch, so the copied content is
        exactly what every snapshot without a copy captured.
        """
        with self.lock:
            for ref in self._active:
                state = self._live(ref)
                if state is not None and relation not in state.frozen:
                    state.frozen[relation] = frozen_copy(relation)

    # -- reader side --------------------------------------------------------
    def freeze(self, state: SnapshotState, relation: Relation) -> Relation:
        """Resolve ``relation`` to its capture-time content for ``state``."""
        with self.lock:
            frozen = state.frozen.get(relation)
            if frozen is None:
                # The writer guard has not fired for this relation since the
                # capture, so its live content *is* the capture-time content.
                frozen = frozen_copy(relation)
                state.frozen[relation] = frozen
            return frozen
