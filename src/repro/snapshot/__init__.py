"""Snapshot-isolated reads over the IVM^ε engines.

Enumeration over the live engine walks mutable view state, so a reader and a
maintenance batch cannot overlap.  This package decouples them: a
:class:`Snapshot` is a cheaply-captured, immutable handle onto one engine
*version* (a monotonically increasing counter stamped by the maintenance
driver), answering ``enumerate()`` / ``result()`` / ``lookup()`` with the
same ordering guarantees as the live engine while updates keep flowing.

* :mod:`repro.snapshot.cow` — the copy-on-write machinery: a per-engine
  :class:`CowTracker` that freezes relation contents lazily, from whichever
  side (writer guard or snapshot read) touches them first;
* :mod:`repro.snapshot.versioned` — the :class:`Snapshot` handle and the
  frozen shadow trees it enumerates.

Entry points: :meth:`repro.core.api.HierarchicalEngine.snapshot`,
:meth:`repro.sharding.ShardedEngine.snapshot` (per-shard capture merged
through the canonical k-way merge), and the serving facade
:class:`repro.core.serving.EngineServer`.
"""

from repro.snapshot.cow import CowTracker, SnapshotState, frozen_copy
from repro.snapshot.versioned import Snapshot, capture_snapshot

__all__ = [
    "CowTracker",
    "Snapshot",
    "SnapshotState",
    "capture_snapshot",
    "frozen_copy",
]
