"""Versioned snapshot handles over a materialized skew-aware plan.

:meth:`repro.core.api.HierarchicalEngine.snapshot` walks the plan's strategy
trees, registers every reachable relation with the engine's
:class:`~repro.snapshot.cow.CowTracker`, and records the *structure* of the
trees (node names, schemas, and live relation references) — an ``O(plan)``
capture that copies no data.  The returned :class:`Snapshot` then answers
``enumerate()`` / ``result()`` / ``lookup()`` against a private *shadow* of
those trees, built on first read, in which every node's relation is resolved
to its frozen capture-time content through the tracker.

Because the shadow reuses the exact tree shapes (including
:class:`~repro.views.view.IndicatorLeaf` children, which select the grounded
enumeration case), a snapshot enumerates with the same Union/Product order
guarantees as the live engine at the moment of capture: same tuples, same
multiplicities, same sequence.

The version stamp comes from the engine's
:class:`~repro.ivm.rebalance.MaintenanceDriver`, which counts ingestion
events (one per single-tuple update, one per consolidated batch); a snapshot
at version ``v`` is indistinguishable from a fresh engine that replayed the
first ``v`` ingestion events and stopped.  After ``engine.load()`` replaces
the database, every older snapshot raises
:class:`~repro.exceptions.StaleStateError` instead of silently mixing old
and new state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.data.schema import ValueTuple
from repro.enumeration.lookup import lookup_multiplicity
from repro.enumeration.result import ResultEnumerator
from repro.query.conjunctive import ConjunctiveQuery
from repro.rings.spec import AggregateSpec
from repro.snapshot.cow import CowTracker, SnapshotState
from repro.views.view import IndicatorLeaf, LeafNode, ViewTreeNode


class _FrozenView(ViewTreeNode):
    """A shadow inner node: same name/schema/children, frozen content."""

    def __init__(self, name, schema, children, relation) -> None:
        super().__init__(name, schema)
        self._children: Tuple[ViewTreeNode, ...] = tuple(children)
        self._relation = relation

    @property
    def children(self) -> Tuple[ViewTreeNode, ...]:
        return self._children

    def relation(self):
        return self._relation


class _Spec:
    """Capture-time record of one tree node: structure + live relation ref."""

    __slots__ = ("name", "schema", "relation", "children", "is_indicator")

    def __init__(self, node: ViewTreeNode) -> None:
        self.name = node.name
        self.schema = node.schema
        self.relation = node.relation()
        self.is_indicator = isinstance(node, IndicatorLeaf)
        self.children = tuple(_Spec(child) for child in node.children)

    def relations(self) -> Iterator:
        yield self.relation
        for child in self.children:
            yield from child.relations()

    def build(
        self, resolve: Callable[[object], object]
    ) -> ViewTreeNode:
        frozen = resolve(self.relation)
        if self.is_indicator:
            return IndicatorLeaf(self.schema, frozen)
        if not self.children:
            return LeafNode(self.name, self.schema, frozen)
        return _FrozenView(
            self.name,
            self.schema,
            [child.build(resolve) for child in self.children],
            frozen,
        )


class _ShadowPlan:
    """The minimal plan surface :class:`ResultEnumerator` consumes."""

    def __init__(self, component_trees: List[List[ViewTreeNode]]) -> None:
        self.component_trees = component_trees


class Snapshot:
    """An immutable view of one engine version.

    Exposes the read side of the engine facade — :meth:`enumerate`,
    :meth:`result`, :meth:`lookup`, :meth:`count_distinct` — with the same
    enumeration order as the live engine had at capture time.  Reads never
    block the engine's writer and the writer never blocks reads; the only
    shared lock is the tracker's, held for individual relation copies.
    """

    def __init__(
        self,
        tracker: CowTracker,
        state: SnapshotState,
        component_specs: List[List[_Spec]],
        query: ConjunctiveQuery,
        version: int,
        validity: Optional[Callable[[], None]] = None,
    ) -> None:
        self._tracker = tracker
        self._state = state
        self._component_specs = component_specs
        self._query = query
        self._head: Tuple[str, ...] = tuple(query.head)
        self.version = version
        self._validity = validity
        self._shadow: Optional[_ShadowPlan] = None

    # ------------------------------------------------------------------
    def _check_valid(self) -> None:
        if self._validity is not None:
            self._validity()

    def _resolve(self, relation):
        return self._tracker.freeze(self._state, relation)

    def _shadow_plan(self) -> _ShadowPlan:
        # Benign build race between reader threads sharing one snapshot:
        # both shadows resolve to the same frozen relations, the last
        # assignment wins.
        shadow = self._shadow
        if shadow is None:
            shadow = _ShadowPlan(
                [
                    [spec.build(self._resolve) for spec in specs]
                    for specs in self._component_specs
                ]
            )
            self._shadow = shadow
        return shadow

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def enumerate(self) -> ResultEnumerator:
        """Enumerate the captured result in the live engine's order."""
        self._check_valid()
        return ResultEnumerator(
            self._shadow_plan(), self._query, validator=self._validity
        )

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the captured result as ``{tuple: multiplicity}``."""
        return self.enumerate().to_dict()

    def count_distinct(self) -> int:
        """Number of distinct result tuples in the captured version."""
        return self.enumerate().count_distinct()

    def aggregate(self, ring, value=None, group_by=None) -> Dict[ValueTuple, object]:
        """Aggregate the captured result as ``{group: answer}``.

        Accepts the same ``ring``/``value``/``group_by`` shapes (or a
        prebuilt :class:`~repro.rings.spec.AggregateSpec`) as
        :meth:`repro.core.api.HierarchicalEngine.aggregate` and folds over
        this snapshot's own enumeration, so the answer is frozen at the
        capture version no matter how far the live engine has moved on.
        A snapshot outliving ``load()`` raises
        :class:`~repro.exceptions.StaleStateError`, exactly like its
        enumeration.
        """
        spec = (
            ring
            if isinstance(ring, AggregateSpec)
            else AggregateSpec(ring, value, group_by)
        )
        return self.enumerate().aggregate(spec)

    def lookup(self, tup: ValueTuple) -> int:
        """Multiplicity of one full result tuple in the captured version."""
        self._check_valid()
        tup = tuple(tup)
        if len(tup) != len(self._head):
            raise ValueError(
                f"lookup tuple {tup!r} has arity {len(tup)}; the query head "
                f"is {self._head!r}"
            )
        assignment = dict(zip(self._head, tup))
        free = frozenset(self._head)
        components = self._shadow_plan().component_trees
        if not components:
            return 0
        total = 1
        for trees in components:
            component = sum(
                lookup_multiplicity(tree, free, assignment) for tree in trees
            )
            if component == 0:
                return 0
            total *= component
        return total

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return iter(self.enumerate())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the snapshot so the writer stops preserving into it."""
        self._tracker.release(self._state)
        self._shadow = None

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({self._query!s}, version={self.version})"


def capture_snapshot(
    tracker: CowTracker,
    component_trees: Sequence[Sequence[ViewTreeNode]],
    query: ConjunctiveQuery,
    version: int,
    validity: Optional[Callable[[], None]] = None,
) -> Snapshot:
    """Capture the current engine version (``O(plan)``; no data copied).

    Must not run concurrently with a mutating call on the same engine — the
    serving layer (:class:`repro.core.serving.EngineServer`) holds its write
    lock around captures; single-threaded callers need nothing extra.
    """
    component_specs = [
        [_Spec(tree) for tree in trees] for trees in component_trees
    ]
    relations = []
    for specs in component_specs:
        for spec in specs:
            relations.extend(spec.relations())
    state = tracker.capture(relations)
    return Snapshot(tracker, state, component_specs, query, version, validity)
