"""Dynamic width ``δ`` (Definition 16).

``δ(Q) = min over free-top variable orders ω of
         max_X max_{R(Y) ∈ atoms(ω_X)} ρ*(({X} ∪ dep_ω(X)) − Y)``

For hierarchical queries the free-top transformation of the canonical
variable order attains the minimum (Lemma 37), and by Proposition 8 the
dynamic width equals the δ-index of Definition 5, which the test suite
asserts against :func:`repro.query.classes.delta_index`.  Proposition 17
(δ ∈ {w−1, w}) is asserted as well.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.vo.free_top import free_top_order
from repro.vo.variable_order import VariableOrder, build_canonical_variable_order
from repro.widths.edge_cover import rho_star_rounded


def dynamic_width_of_order(order: VariableOrder, query: ConjunctiveQuery) -> float:
    """``δ(ω)`` for a single (free-top) variable order."""
    width = 0.0
    for node in order.iter_variable_nodes():
        base = {node.variable} | set(order.dep(node.variable))
        for atom in node.subtree_atoms():
            remaining = base - set(atom.variables)
            width = max(width, rho_star_rounded(query, remaining))
    return width


def dynamic_width_profile(query: ConjunctiveQuery) -> Dict[Tuple[str, str], float]:
    """Per (variable, atom) contribution to the dynamic width."""
    canonical = build_canonical_variable_order(query)
    order = free_top_order(canonical, query)
    profile: Dict[Tuple[str, str], float] = {}
    for node in order.iter_variable_nodes():
        base = {node.variable} | set(order.dep(node.variable))
        for atom in node.subtree_atoms():
            remaining = base - set(atom.variables)
            profile[(node.variable, atom.relation)] = rho_star_rounded(query, remaining)
    return profile


def dynamic_width(query: ConjunctiveQuery) -> float:
    """Dynamic width ``δ`` of a hierarchical query."""
    canonical = build_canonical_variable_order(query)
    order = free_top_order(canonical, query)
    return dynamic_width_of_order(order, query)
