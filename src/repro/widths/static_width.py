"""Static width ``w`` (Definition 15).

``w(Q) = min over free-top variable orders ω of max_X ρ*({X} ∪ dep_ω(X))``.

For hierarchical queries the free-top transformation of the canonical
variable order attains the minimum (this is how the paper proves the upper
bounds of Theorem 2 and Proposition 3), so the width is evaluated on that
order.  Free-connex hierarchical queries get static width 1 (Proposition 3),
which the test suite asserts for a catalogue of queries from the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.vo.free_top import free_top_order
from repro.vo.variable_order import VariableOrder, build_canonical_variable_order
from repro.widths.edge_cover import rho_star_rounded


def static_width_of_order(order: VariableOrder, query: ConjunctiveQuery) -> float:
    """``w(ω) = max_X ρ*({X} ∪ dep_ω(X))`` for one variable order."""
    width = 0.0
    for node in order.iter_variable_nodes():
        variables = {node.variable} | set(order.dep(node.variable))
        width = max(width, rho_star_rounded(query, variables))
    return width


def static_width_profile(query: ConjunctiveQuery) -> Dict[str, float]:
    """Per-variable contribution ``ρ*({X} ∪ dep(X))`` on the free-top order.

    Useful for explaining *why* a query has a given width (exposed through
    the planner's ``explain`` output).
    """
    canonical = build_canonical_variable_order(query)
    order = free_top_order(canonical, query)
    profile: Dict[str, float] = {}
    for node in order.iter_variable_nodes():
        variables = {node.variable} | set(order.dep(node.variable))
        profile[node.variable] = rho_star_rounded(query, variables)
    return profile


def static_width(query: ConjunctiveQuery) -> float:
    """Static width ``w`` of a hierarchical query.

    Queries are required to contain at least one atom with a non-empty
    schema, so the returned value is at least 1 (paper footnote 1).
    """
    canonical = build_canonical_variable_order(query)
    order = free_top_order(canonical, query)
    return max(1.0, static_width_of_order(order, query))
