"""Width measures: edge covers, static width, dynamic width."""

from repro.widths.dynamic_width import (
    dynamic_width,
    dynamic_width_of_order,
    dynamic_width_profile,
)
from repro.widths.edge_cover import (
    fractional_edge_cover,
    integral_edge_cover,
    rho,
    rho_star,
    rho_star_rounded,
)
from repro.widths.static_width import (
    static_width,
    static_width_of_order,
    static_width_profile,
)

__all__ = [
    "dynamic_width",
    "dynamic_width_of_order",
    "dynamic_width_profile",
    "fractional_edge_cover",
    "integral_edge_cover",
    "rho",
    "rho_star",
    "rho_star_rounded",
    "static_width",
    "static_width_of_order",
    "static_width_profile",
]
