"""Fractional and integral edge covers (Section 3, "Width Measures").

Given a conjunctive query ``Q`` and a variable set ``F ⊆ vars(Q)``, a
fractional edge cover assigns a weight ``λ_{R(X)} ∈ [0, 1]`` to every atom so
that each variable of ``F`` is covered with total weight at least one; the
fractional edge cover number ``ρ*(F)`` is the minimum total weight, solved
here as a linear program with :func:`scipy.optimize.linprog`.  The integral
edge cover number ``ρ(F)`` restricts weights to ``{0, 1}`` and is computed by
exhaustive search over atom subsets (queries are tiny in data complexity).

Lemma 30 of the paper states that ``ρ*(F) = ρ(F)`` for hierarchical queries;
the property-based tests assert this equality on randomly generated
hierarchical queries.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery


def fractional_edge_cover(
    atoms: Sequence[Atom], variables: Iterable[str]
) -> Tuple[float, Dict[Atom, float]]:
    """Solve the fractional edge cover LP.

    Returns ``(ρ*, weights)``.  Raises ``ValueError`` when some variable is
    not covered by any atom (the LP would be infeasible).
    """
    targets = [v for v in dict.fromkeys(variables)]
    atoms = list(atoms)
    if not targets:
        return 0.0, {atom: 0.0 for atom in atoms}
    for variable in targets:
        if not any(variable in atom.variables for atom in atoms):
            raise ValueError(f"variable {variable!r} is not covered by any atom")
    n = len(atoms)
    c = np.ones(n)
    # constraints: for each target variable, sum of weights of covering atoms >= 1
    a_ub = np.zeros((len(targets), n))
    for row, variable in enumerate(targets):
        for col, atom in enumerate(atoms):
            if variable in atom.variables:
                a_ub[row, col] = -1.0
    b_ub = -np.ones(len(targets))
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, 1.0)] * n, method="highs")
    if not result.success:  # pragma: no cover - defensive; LP is always feasible here
        raise RuntimeError(f"edge cover LP failed: {result.message}")
    weights = {atom: float(w) for atom, w in zip(atoms, result.x)}
    return float(result.fun), weights


def integral_edge_cover(
    atoms: Sequence[Atom], variables: Iterable[str]
) -> Tuple[int, Tuple[Atom, ...]]:
    """Smallest number of atoms covering ``variables`` (exhaustive search).

    Returns ``(ρ, chosen_atoms)``.  Raises ``ValueError`` when no subset
    covers the variables.
    """
    targets = set(variables)
    atoms = list(atoms)
    if not targets:
        return 0, ()
    relevant = [atom for atom in atoms if targets & set(atom.variables)]
    for size in range(1, len(relevant) + 1):
        for subset in combinations(relevant, size):
            covered: set = set()
            for atom in subset:
                covered.update(atom.variables)
            if targets <= covered:
                return size, subset
    raise ValueError(f"variables {sorted(targets)} cannot be covered by the atoms")


def rho_star(
    query_or_atoms, variables: Iterable[str]
) -> float:
    """``ρ*_Q(F)``: fractional edge cover number of ``variables``.

    Accepts either a :class:`ConjunctiveQuery` or a sequence of atoms.
    """
    atoms = _atoms_of(query_or_atoms)
    value, _ = fractional_edge_cover(atoms, variables)
    return value


def rho(query_or_atoms, variables: Iterable[str]) -> int:
    """``ρ_Q(F)``: integral edge cover number of ``variables``."""
    atoms = _atoms_of(query_or_atoms)
    value, _ = integral_edge_cover(atoms, variables)
    return value


def _atoms_of(query_or_atoms) -> Tuple[Atom, ...]:
    if isinstance(query_or_atoms, ConjunctiveQuery):
        return query_or_atoms.atoms
    return tuple(query_or_atoms)


def rho_star_rounded(query_or_atoms, variables: Iterable[str]) -> float:
    """``ρ*`` rounded to 9 decimal places (LP solutions carry float noise).

    Width measures compare and maximise these values; rounding avoids
    spurious ``2.0000000001 > 2`` artefacts in tests and planning decisions.
    """
    return round(rho_star(query_or_atoms, variables), 9)
