"""Public facade of the library: the IVM^ε engine.

:class:`HierarchicalEngine` ties everything together.  Typical use::

    from repro import Database, HierarchicalEngine

    db = Database.from_dict({
        "R": (("A", "B"), [(1, 10), (2, 10), (2, 20)]),
        "S": (("B", "C"), [(10, 7), (20, 8)]),
    })
    engine = HierarchicalEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5)
    engine.load(db)
    print(dict(engine.enumerate()))          # {(1, 7): 1, (2, 7): 1, (2, 8): 1}
    engine.update("R", (3, 20), +1)          # single-tuple insert
    print(engine.result())

Heavy update traffic should be ingested in *batches*: ``apply_batch``
consolidates a sequence of updates into its net per-relation deltas, applies
them to the base relations in one pass, propagates grouped deltas through
every affected view tree in a single traversal, and runs one deferred
rebalance check — amortizing the per-update overhead while producing the
same query result as replaying the updates one by one::

    from repro import Update, UpdateStream

    stream = UpdateStream([Update("R", (4, 20), 1), Update("S", (20, 9), 1)])
    engine.apply_batch(stream)               # one consolidated batch
    for batch in stream.batches(500):        # or: chunk a long stream
        engine.apply_batch(batch)
    engine.apply_stream(stream, batch_size=500)   # equivalent shorthand

The ``epsilon`` parameter is the paper's trade-off knob: preprocessing runs
in ``O(N^{1+(w−1)ε})``, enumeration delay is ``O(N^{1−ε})``, and (in dynamic
mode) single-tuple updates take ``O(N^{δε})`` amortized time, where ``w`` and
``δ`` are the static and dynamic widths of the query (Theorems 2 and 4).
The knob is *live*: :meth:`HierarchicalEngine.retune` switches a loaded
dynamic engine to a new ε in one major-rebalance pass, and
:mod:`repro.adaptive` drives it automatically from workload telemetry
(every engine carries a :class:`~repro.adaptive.WorkloadTelemetry`
collector recording per-operation update and enumeration costs).

Beyond a single engine, :class:`repro.sharding.ShardedEngine` mirrors this
facade (``apply_update`` / ``apply_batch`` / ``apply_stream`` /
``enumerate`` / ``check_invariants``) over a pool of per-shard
``HierarchicalEngine`` instances, hash-partitioned on the planner-chosen
shard key exposed here as the :attr:`HierarchicalEngine.shard_key`
property — the shard-aware planner gate: queries whose atoms share no
common variable are rejected for sharding even though a single engine
accepts them.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch, UpdateStream, as_batch, iter_batches
from repro.engine.materialize import materialize_plan, total_view_size
from repro.enumeration.result import ResultEnumerator
from repro.exceptions import (
    DurabilityError,
    InvariantViolationError,
    ReproError,
    UnsupportedQueryError,
)
from repro.exceptions import StaleStateError
from repro.adaptive.telemetry import WorkloadTelemetry
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    coerce_config,
)
from repro.ivm.rebalance import MaintenanceDriver, RebalanceStats
from repro.core.planner import (
    QueryPlan,
    coerce_query,
    instantiate_plan,
    plan_query,
)
from repro.rings.base import Ring
from repro.rings.spec import AggregateSpec, MaintainedAggregate
from repro.snapshot.cow import CowTracker
from repro.snapshot.versioned import Snapshot, capture_snapshot
from repro.views.build import DYNAMIC_MODE, STATIC_MODE
from repro.views.skew import SkewAwarePlan


class HierarchicalEngine:
    """Static and dynamic evaluation of hierarchical queries with the ε trade-off."""

    def __init__(
        self,
        query,
        epsilon: float = 0.5,
        mode: str = DYNAMIC_MODE,
        enable_rebalancing: bool = True,
        copy_database: bool = True,
        telemetry: Union[WorkloadTelemetry, bool, None] = None,
        durability: Union[DurabilityConfig, str, Path, None] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon
        self.mode = mode
        self.enable_rebalancing = enable_rebalancing
        self.copy_database = copy_database
        self.plan: QueryPlan = plan_query(coerce_query(query), mode)
        self.query = self.plan.query
        # Workload telemetry: every ingestion event and every enumeration
        # records its size and wall-clock cost here, feeding the adaptive ε
        # controller (repro.adaptive).  Callers may share one collector
        # across engines by passing their own, or pass ``telemetry=False``
        # to opt out entirely — updates then skip the timing calls and
        # enumeration skips the recording wrapper.
        if telemetry is False:
            self.telemetry: Optional[WorkloadTelemetry] = None
        elif telemetry is None or telemetry is True:
            self.telemetry = WorkloadTelemetry()
        else:
            self.telemetry = telemetry
        self._database: Optional[Database] = None
        self._skew_plan: Optional[SkewAwarePlan] = None
        self._driver: Optional[MaintenanceDriver] = None
        self.preprocessing_seconds: Optional[float] = None
        # Threshold base used by static mode, frozen at load() so the
        # reported threshold can never drift from the one the views were
        # materialized with (dynamic mode reads the driver's base instead).
        self._static_threshold_base: Optional[float] = None
        # Bumped by every load(): snapshots and live enumerators created
        # against an earlier load raise StaleStateError instead of silently
        # reading the replaced state.
        self._generation = 0
        # Result-delta capture flag, re-applied to the driver on every
        # load() so a serving layer that enabled it keeps receiving
        # per-commit deltas across reloads.
        self._capture_deltas = False
        # Maintained aggregates keyed by AggregateSpec.key().  Each state
        # folds the per-commit result deltas of the maintenance layer into
        # {group: (support, ring element)}; like the capture flag above,
        # the registry survives load()/recovery — the states are refolded
        # from a fresh enumeration and re-subscribed to the new driver.
        self._aggregates: Dict[Tuple, MaintainedAggregate] = {}
        self._cow_tracker: Optional[CowTracker] = None
        # Durability: a directory (or DurabilityConfig) makes every accepted
        # update/batch/retune a fsynced WAL record and every Nth commit a
        # checkpoint; HierarchicalEngine.recover() rebuilds the exact engine
        # after a crash.  Dynamic mode only — static engines never mutate.
        if durability is not None and mode != DYNAMIC_MODE:
            raise DurabilityError(
                "durability requires mode='dynamic'; a static engine has no "
                "update stream to log"
            )
        self.durability: Optional[DurabilityConfig] = (
            coerce_config(durability) if durability is not None else None
        )
        self._durability: Optional[DurabilityManager] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def static_width(self) -> float:
        """The query's static width ``w`` (Definition 15)."""
        return self.plan.static_width

    @property
    def dynamic_width(self) -> float:
        """The query's dynamic width ``δ`` (Definition 16)."""
        return self.plan.dynamic_width

    @property
    def classification(self):
        """Class membership summary of the query (Figure 2 landscape)."""
        return self.plan.classification

    @property
    def shard_key(self) -> str:
        """The variable a sharded deployment would hash-partition on.

        This is the shard-aware planner gate shared with
        :class:`repro.sharding.ShardedEngine` (whose ``shard_key``
        attribute holds the same value): the planner-chosen variable
        occurring in every atom (preferring free variables, then sorted
        order).  Raises
        :class:`~repro.exceptions.UnsupportedQueryError` for queries that
        cannot keep joins shard-local (disconnected bodies).
        """
        return self.plan.shard_key()

    @property
    def database(self) -> Database:
        self._require_loaded()
        assert self._database is not None
        return self._database

    @property
    def threshold_base(self) -> float:
        """The Definition 51 threshold base ``M`` — the single source of truth.

        Dynamic mode reads the rebalance driver's base (initialized to
        ``2N + 1`` and doubled/halved by major rebalancing under the
        invariant ``⌊M/4⌋ ≤ N < M``); static mode reads the base frozen at
        :meth:`load` time.  Every threshold this engine reports or checks
        derives from this one value — never from the live database size,
        which silently drifts from the driver's base between rebalances.
        """
        self._require_loaded()
        if self._driver is not None:
            return float(self._driver.threshold_base)
        assert self._static_threshold_base is not None
        return self._static_threshold_base

    @property
    def threshold(self) -> float:
        """The current heavy/light threshold ``M^ε`` (see :attr:`threshold_base`)."""
        self._require_loaded()
        if self._driver is not None:
            return self._driver.threshold
        assert self._static_threshold_base is not None
        return self._static_threshold_base ** self.epsilon

    @property
    def rebalance_stats(self) -> Optional[RebalanceStats]:
        return self._driver.stats if self._driver is not None else None

    def expected_exponents(self) -> Dict[str, float]:
        """The asymptotic exponents of Theorems 2/4 for this query and ε."""
        return self.plan.expected_exponents(self.epsilon)

    def view_size(self) -> int:
        """Total number of tuples stored across all materialized views."""
        self._require_loaded()
        assert self._skew_plan is not None
        return total_view_size(self._skew_plan)

    def check_invariants(self) -> None:
        """Deep consistency probe over the engine's internal structures.

        Verifies, for every heavy/light partition of the plan, that the
        light part is a sub-bag of its base relation and — when rebalancing
        is active — that the loose partition conditions of Definition 11
        hold at the current threshold; and, for every indicator triple,
        that the ``∃H`` support matches its definition.  Raises
        :class:`~repro.exceptions.InvariantViolationError` on the first
        violation.  The differential conformance harness
        (:mod:`repro.conformance`) calls this at every checkpoint so a
        maintenance bug surfaces even when it happens not to corrupt the
        enumerated result yet.
        """
        self._require_loaded()
        assert self._skew_plan is not None
        rebalanced = self.mode == DYNAMIC_MODE and self.enable_rebalancing
        threshold = self.threshold
        for partition in self._skew_plan.partitions.partitions():
            if rebalanced:
                partition.check_loose(threshold)
            else:
                partition.check_consistency()
        for triple in self._skew_plan.indicator_triples:
            if not triple.check_support():
                raise InvariantViolationError(
                    f"heavy-indicator support {triple.exists_heavy.name} does "
                    "not match its definition"
                )

    def explain(self) -> str:
        """Human-readable description of the plan and, if loaded, the view trees."""
        parts = [self.plan.describe(), f"epsilon: {self.epsilon}", f"mode: {self.mode}"]
        if self._skew_plan is not None:
            parts.append(self._skew_plan.describe())
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def load(self, database: Database) -> "HierarchicalEngine":
        """Run the preprocessing stage on ``database``.

        With ``copy_database=True`` (the default) the engine operates on a
        private copy, so the caller's relations are never mutated by updates.
        """
        self._generation += 1
        self._cow_tracker = CowTracker()
        self._database = database.copy() if self.copy_database else database
        started = time.perf_counter()
        self._skew_plan = instantiate_plan(self.plan, self._database)
        if self.mode == DYNAMIC_MODE:
            self._driver = MaintenanceDriver(
                self._skew_plan,
                self._database,
                self.epsilon,
                enable_rebalancing=self.enable_rebalancing,
                telemetry=self.telemetry,
            )
            self._static_threshold_base = None
            if self._capture_deltas:
                self._driver.set_delta_capture(True)
        else:
            self._driver = None
            self._static_threshold_base = max(1.0, float(self._database.size))
        materialize_plan(self._skew_plan, self.threshold)
        self._reattach_aggregates()
        self.preprocessing_seconds = time.perf_counter() - started
        if self.durability is not None:
            if self._durability is not None:
                self._durability.close()
            self._durability = DurabilityManager(self, self.durability)
            self._durability.start_fresh()
        return self

    def _restore_from_checkpoint(self, state: Dict[str, Any]) -> None:
        """Rebuild this engine's loaded state from a checkpoint state dict.

        The recovery counterpart of :meth:`load`: the database is rebuilt
        in its serialized insertion order (which seeds index iteration
        order and hence enumeration order), the driver's version,
        Definition-51 threshold base, and counters are restored *before*
        the views are materialized — materialization must run at the
        restored threshold, not at the fresh ``2N + 1`` the driver's
        constructor picks.  Only :mod:`repro.durability.recovery` calls
        this.
        """
        database = Database()
        for name, schema, rows in state["relations"]:
            relation = database.create_relation(name, tuple(schema))
            for tup, mult in rows:
                relation.apply_delta(tuple(tup), int(mult))
        self._generation += 1
        self._cow_tracker = CowTracker()
        self._database = database
        started = time.perf_counter()
        self._skew_plan = instantiate_plan(self.plan, self._database)
        self._driver = MaintenanceDriver(
            self._skew_plan,
            self._database,
            self.epsilon,
            enable_rebalancing=self.enable_rebalancing,
            telemetry=self.telemetry,
        )
        self._driver.version = int(state["version"])
        self._driver.threshold_base = int(state["threshold_base"])
        self._driver.stats = RebalanceStats.from_dict(state["stats"])
        if self._capture_deltas:
            self._driver.set_delta_capture(True)
        self._static_threshold_base = None
        if self.telemetry is not None and state.get("telemetry"):
            self.telemetry.restore_state(state["telemetry"])
        materialize_plan(self._skew_plan, self.threshold)
        self._reattach_aggregates()
        self.preprocessing_seconds = time.perf_counter() - started

    def _attach_durability(self, manager: DurabilityManager) -> None:
        """Adopt a recovery-built manager as this engine's commit path."""
        self._durability = manager
        self.durability = manager.config

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        durability: Union[DurabilityConfig, str, Path, None] = None,
    ) -> Tuple["HierarchicalEngine", "Any"]:
        """Rebuild the durable engine persisted in ``directory``.

        Loads the newest valid checkpoint, replays the WAL tail through
        the normal ingestion paths (re-hitting the scheduled checkpoint
        barriers at the same versions), verifies the final version, and
        returns ``(engine, report)`` — the engine already appending to
        the recovered WAL.  See :mod:`repro.durability.recovery`.
        """
        from repro.durability.recovery import recover_engine

        return recover_engine(directory, durability)

    def checkpoint(self) -> Path:
        """Write a checkpoint now (also an index-normalization barrier).

        Durable engines checkpoint automatically every
        ``checkpoint_interval`` commits; this forces one between
        schedule points — before a planned shutdown, say, so recovery
        replays an empty tail.
        """
        self._require_dynamic()
        if self._durability is None:
            raise DurabilityError(
                "this engine has no durability directory; pass durability=... "
                "to the constructor"
            )
        return self._durability.checkpoint()

    @property
    def durability_stats(self):
        """WAL/checkpoint counters, or ``None`` when not durable."""
        return self._durability.stats if self._durability is not None else None

    def close(self) -> None:
        """Flush and close the durability manager, if any (idempotent).

        The on-disk state stays recoverable; a closed engine can keep
        serving reads but the next ``apply`` would raise.
        """
        if self._durability is not None:
            self._durability.close()

    def _require_loaded(self) -> None:
        if self._skew_plan is None:
            raise ReproError("the engine has no database; call load() first")

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def _generation_validator(self):
        """A check bound to the current load; raises once load() replaces it."""
        generation = self._generation
        def _check() -> None:
            if self._generation != generation:
                raise StaleStateError(
                    "the engine's database was replaced by load() after this "
                    "snapshot/enumerator was created; capture a new one"
                )
        return _check

    def enumerate(self) -> ResultEnumerator:
        """Return an enumerator over the distinct result tuples.

        The enumerator is bound to the current load: if :meth:`load` replaces
        the database while it is (or before it is) consumed, iteration raises
        :class:`~repro.exceptions.StaleStateError` rather than reflecting a
        mixture of old and new state.
        """
        self._require_loaded()
        assert self._skew_plan is not None
        return ResultEnumerator(
            self._skew_plan,
            self.query,
            validator=self._generation_validator(),
            telemetry=self.telemetry,
        )

    def result(self) -> Dict[ValueTuple, int]:
        """Materialize the full result as ``{tuple: multiplicity}``."""
        return self.enumerate().to_dict()

    def count_distinct(self) -> int:
        """Number of distinct result tuples."""
        return sum(1 for _ in self.enumerate())

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        return iter(self.enumerate())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of ingestion events absorbed since :meth:`load` (0 static)."""
        self._require_loaded()
        return self._driver.version if self._driver is not None else 0

    def snapshot(self) -> Snapshot:
        """Capture an immutable handle onto the engine's current version.

        The capture is ``O(plan)`` — it records the strategy-tree structure
        and registers the reachable relations with the copy-on-write
        tracker; no view content is copied until either the maintenance
        path is about to overwrite it or the snapshot reads it.  The
        returned :class:`~repro.snapshot.versioned.Snapshot` answers
        ``enumerate()`` / ``result()`` / ``lookup()`` with the same ordering
        guarantees as this engine had at capture time, while further
        updates/batches (including minor and major rebalances) keep flowing
        through the live engine.

        Must not be called concurrently with a mutating call on the same
        engine; :class:`repro.core.serving.EngineServer` serializes capture
        against its writer for multi-threaded deployments.  A snapshot
        outliving a subsequent :meth:`load` raises
        :class:`~repro.exceptions.StaleStateError` on every read.
        """
        self._require_loaded()
        assert self._skew_plan is not None and self._cow_tracker is not None
        return capture_snapshot(
            self._cow_tracker,
            self._skew_plan.component_trees,
            self.query,
            self.version,
            validity=self._generation_validator(),
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Apply a single-tuple update ``δR = {tup → multiplicity}``."""
        self.apply(Update(relation, tuple(tup), multiplicity))

    def insert(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Insert ``multiplicity`` copies of ``tup`` into ``relation``."""
        self.update(relation, tup, abs(multiplicity))

    def delete(self, relation: str, tup: ValueTuple, multiplicity: int = 1) -> None:
        """Delete ``multiplicity`` copies of ``tup`` from ``relation``."""
        self.update(relation, tup, -abs(multiplicity))

    def apply(self, update: Update) -> None:
        """Apply one :class:`~repro.data.update.Update`.

        On a durable engine the update is ingested first, then committed
        to the WAL (append + flush + fsync) before this call returns: the
        log holds only *accepted* updates, so a rejected over-delete can
        never poison a recovery replay.  A crash between ingest and
        commit loses exactly the unacknowledged update.
        """
        self._require_dynamic()
        self._driver.on_update(update)
        if self._durability is not None:
            self._durability.commit_update(update, self.version)

    def apply_batch(self, updates: Union[UpdateBatch, Iterable[Update]]) -> None:
        """Consolidate ``updates`` into one batch and ingest it in one pass.

        Accepts an :class:`~repro.data.update.UpdateBatch`, an
        :class:`~repro.data.update.UpdateStream`, or any iterable of
        :class:`~repro.data.update.Update`.  Same-tuple deltas are merged and
        cancelled pairs dropped before any maintenance work happens; the
        surviving per-relation deltas are applied to the base relations and
        propagated through each affected view tree in a single grouped
        traversal, followed by one deferred rebalance check.  The resulting
        query result is identical to applying the same updates one by one.

        On a durable engine the whole consolidated batch is one WAL
        record (one fsync per batch — this is where WAL overhead
        amortizes; see ``benchmarks/bench_durability.py``).
        """
        self._require_dynamic()
        batch = as_batch(updates)
        self._driver.on_batch(batch)
        if self._durability is not None:
            self._durability.commit_batch(batch, self.version)

    def apply_stream(
        self, updates: Iterable[Update], batch_size: Optional[int] = None
    ) -> None:
        """Apply a sequence of updates, optionally chunked into batches.

        With ``batch_size=None`` every update is processed individually (the
        paper's single-tuple model); with a positive ``batch_size`` the
        stream is cut into consecutive consolidated batches of that many
        source updates and ingested through :meth:`apply_batch`.
        """
        if batch_size is not None:
            for batch in iter_batches(updates, batch_size):
                self.apply_batch(batch)
            return
        for update in updates:
            self.apply(update)

    def _require_dynamic(self) -> None:
        self._require_loaded()
        if self.mode != DYNAMIC_MODE or self._driver is None:
            raise UnsupportedQueryError(
                "updates require mode='dynamic'; this engine was built for "
                "static evaluation"
            )

    # ------------------------------------------------------------------
    # result-delta capture (push-based serving)
    # ------------------------------------------------------------------
    def set_delta_capture(self, enabled: bool) -> None:
        """Start (or stop) accumulating per-commit result-level deltas.

        With capture on, every ingestion event folds the induced change of
        the *query result* — the first-order delta of the commit's net
        per-relation groups, computed inside the normal maintenance pass —
        into a net accumulator that :meth:`drain_result_delta` returns and
        clears.  This is what powers push-based subscriptions
        (:mod:`repro.net`): subscribers receive the drained delta per
        commit instead of re-enumerating.  Rebalances and retunes never
        contribute (they reorganize views without changing the result).
        Dynamic mode only; survives :meth:`load`.  The caller owns the
        drain cadence — an enabled capture that is never drained grows
        with the net result churn.
        """
        if enabled and self.mode != DYNAMIC_MODE:
            raise UnsupportedQueryError(
                "delta capture requires mode='dynamic'; a static engine has "
                "no update stream to capture deltas from"
            )
        self._capture_deltas = bool(enabled)
        if self._driver is not None:
            self._driver.set_delta_capture(self._capture_deltas)

    def drain_result_delta(self) -> Dict[ValueTuple, int]:
        """Return and clear the net result delta accumulated since last drain.

        Empty when capture is off (see :meth:`set_delta_capture`) or when
        the commits since the last drain cancelled out.
        """
        if self._driver is None:
            return {}
        return self._driver.drain_result_delta()

    # ------------------------------------------------------------------
    # ring-annotated aggregates
    # ------------------------------------------------------------------
    def _coerce_spec(
        self, ring: Union[Ring, str, AggregateSpec], value, group_by
    ) -> AggregateSpec:
        if isinstance(ring, AggregateSpec):
            if value is not None or group_by is not None:
                raise ValueError(
                    "pass either an AggregateSpec or ring/value/group_by, "
                    "not both"
                )
            return ring
        return AggregateSpec(ring, value, group_by)

    def _aggregate_listener(self, state: MaintainedAggregate):
        def _on_delta(delta: Dict[ValueTuple, int]) -> None:
            state.on_delta(delta.items())

        return _on_delta

    def _reattach_aggregates(self) -> None:
        """Refold and re-subscribe maintained aggregates after a (re)load.

        Every load rebuilds the maintenance driver, dropping its delta
        listeners; the spec registry lives on the engine, so — mirroring
        how ``_capture_deltas`` is re-applied above — each state is
        refolded from one fresh enumeration of the new database and
        re-registered with the new driver.  The internal enumeration
        bypasses telemetry: rebuilds are preprocessing, not workload reads.
        """
        if not self._aggregates:
            return
        if self._driver is None:
            # A static reload cannot maintain state; drop the registry so
            # reads fall back to enumerate-and-fold instead of serving a
            # frozen aggregate as if it were live.
            self._aggregates.clear()
            return
        assert self._skew_plan is not None
        for state in self._aggregates.values():
            state.rebuild(ResultEnumerator(self._skew_plan, self.query))
            self._driver.add_delta_listener(self._aggregate_listener(state))

    def register_aggregate(self, spec: AggregateSpec) -> MaintainedAggregate:
        """Install (or fetch) the maintained state for ``spec``.

        First registration costs one enumerate-and-fold over the current
        result; afterwards every commit updates the state in O(delta) via
        the maintenance layer's result-delta listeners, and reads are
        O(groups) — no enumeration.  The registry is keyed by
        :meth:`~repro.rings.spec.AggregateSpec.key`, so registering the
        same spec twice returns the same state.  Dynamic mode only.
        """
        self._require_dynamic()
        assert self._driver is not None and self._skew_plan is not None
        key = spec.key()
        state = self._aggregates.get(key)
        if state is None:
            state = MaintainedAggregate(spec, self.query.head)
            state.rebuild(ResultEnumerator(self._skew_plan, self.query))
            self._driver.add_delta_listener(self._aggregate_listener(state))
            self._aggregates[key] = state
        return state

    @property
    def registered_aggregates(self) -> Tuple[AggregateSpec, ...]:
        """Specs currently maintained by this engine (registration order)."""
        return tuple(state.spec for state in self._aggregates.values())

    def aggregate(
        self,
        ring: Union[Ring, str, AggregateSpec],
        value=None,
        group_by=None,
        *,
        maintained: bool = True,
    ) -> Dict[ValueTuple, Any]:
        """Answer one aggregate over the query result as ``{group: answer}``.

        ``ring`` is a :class:`~repro.rings.base.Ring` (or registered ring
        name, or a prebuilt :class:`~repro.rings.spec.AggregateSpec`);
        ``value`` selects what each result tuple contributes (a head
        variable name/position, a tuple of them, a local callable, or
        ``None`` for count-style rings); ``group_by`` names the head
        variables forming the group key (``None`` = one global group,
        keyed ``()``)::

            engine.aggregate("sum", value="price", group_by="region")
            engine.aggregate("max", value="score")      # {(): best score}

        With ``maintained=True`` (the default, dynamic mode) the spec is
        registered once and answered from its maintained state in
        O(groups), exact across updates, batches, rebalances, retunes,
        and recovery.  With ``maintained=False`` — and always in static
        mode — the answer is one enumerate-and-fold over a fresh
        enumerator, which also serves as the oracle the conformance
        harness checks maintained answers against.  Both paths record
        their read cost into the engine's workload telemetry.
        """
        self._require_loaded()
        spec = self._coerce_spec(ring, value, group_by)
        if not maintained or self.mode != DYNAMIC_MODE or self._driver is None:
            return self.enumerate().aggregate(spec)
        state = self.register_aggregate(spec)
        started = time.perf_counter()
        answers = state.answers()
        if self.telemetry is not None:
            self.telemetry.record_read(
                len(answers), time.perf_counter() - started
            )
        return answers

    def aggregate_elements(
        self, spec: AggregateSpec, maintained: bool = True
    ) -> Dict[ValueTuple, Tuple[int, Any]]:
        """Raw ``{group: (support, element)}`` for this engine's result.

        The shard-merge / wire shape: supports and un-finalized ring
        elements, combinable across engines with
        :func:`repro.enumeration.union.merge_shard_aggregates`.  The
        sharded facade and the shard servers call this; local callers
        normally want :meth:`aggregate`.
        """
        self._require_loaded()
        if maintained and self.mode == DYNAMIC_MODE and self._driver is not None:
            state = self.register_aggregate(spec)
            started = time.perf_counter()
            elements = state.elements()
            if self.telemetry is not None:
                self.telemetry.record_read(
                    len(elements), time.perf_counter() - started
                )
            return elements
        return self.enumerate().aggregate_elements(spec)

    # ------------------------------------------------------------------
    # adaptive retuning
    # ------------------------------------------------------------------
    def retune(self, epsilon: float) -> None:
        """Switch the live engine to a new ε without replaying the workload.

        Reuses the major-rebalance machinery: the threshold base is
        re-anchored at ``M = 2N + 1`` (what :meth:`load` would choose for
        the current database), every partition is strictly repartitioned at
        the new ``M^ε``, and every view is recomputed.  The retuned engine
        is equivalent — same result, same enumeration order — to a fresh
        engine constructed at ``epsilon`` over the current database, so
        callers can flip the update/enumeration trade-off mid-stream as the
        workload shifts (see :class:`repro.adaptive.AdaptiveController` for
        the telemetry-driven policy, and ``benchmarks/bench_adaptive.py``
        for what it buys on a phase-shifting workload).

        Open snapshots keep serving their capture-time state (the retune
        flows through the same copy-on-write guards as any major
        rebalance); the engine version ticks once, and snapshots or
        enumerators only go stale on :meth:`load`, exactly as before.
        Costs one preprocessing pass — ``O(N^{1+(w−1)ε})`` — so it should
        be driven by a hysteresis policy, not per update.  Static engines
        cannot retune (re-``load`` instead); ``epsilon`` outside ``[0, 1]``
        raises :class:`ValueError`.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self._require_dynamic()
        assert self._driver is not None
        self._driver.retune(epsilon)
        self.epsilon = epsilon
        if self._durability is not None:
            # ε is engine state: a replay that skipped the retune would
            # rebuild different partitions than the engine that crashed.
            self._durability.commit_retune(epsilon, self.version)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalEngine({self.query!s}, epsilon={self.epsilon}, "
            f"mode={self.mode!r})"
        )


class StaticEngine(HierarchicalEngine):
    """Convenience subclass for static evaluation (Theorem 2)."""

    def __init__(self, query, epsilon: float = 0.5, copy_database: bool = True) -> None:
        super().__init__(
            query, epsilon=epsilon, mode=STATIC_MODE, copy_database=copy_database
        )


class DynamicEngine(HierarchicalEngine):
    """Convenience subclass for dynamic evaluation (Theorem 4)."""

    def __init__(
        self,
        query,
        epsilon: float = 0.5,
        enable_rebalancing: bool = True,
        copy_database: bool = True,
    ) -> None:
        super().__init__(
            query,
            epsilon=epsilon,
            mode=DYNAMIC_MODE,
            enable_rebalancing=enable_rebalancing,
            copy_database=copy_database,
        )
