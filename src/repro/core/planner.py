"""Query planning: validation, variable orders, widths, skew-aware plans.

The planner is the glue between the query layer and the execution layers.
It validates that a query is inside the supported fragment, builds the
canonical variable order, computes the width measures that parameterise the
cost statements of Theorems 2 and 4, and hands a :class:`SkewAwarePlan` to
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.data.database import Database
from repro.exceptions import SchemaError, UnknownRelationError, UnsupportedQueryError
from repro.query.classes import QueryClassification, classify
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.parser import parse_query
from repro.vo.free_top import free_top_order
from repro.vo.variable_order import VariableOrder, build_canonical_variable_order
from repro.views.build import DYNAMIC_MODE, STATIC_MODE
from repro.views.skew import SkewAwarePlan, build_skew_aware_plan
from repro.widths.dynamic_width import dynamic_width
from repro.widths.static_width import static_width


def coerce_query(query) -> ConjunctiveQuery:
    """Accept either a :class:`ConjunctiveQuery` or the textual notation."""
    if isinstance(query, ConjunctiveQuery):
        return query
    if isinstance(query, str):
        return parse_query(query)
    raise UnsupportedQueryError(
        f"expected a ConjunctiveQuery or a query string, got {type(query).__name__}"
    )


def validate_query(query: ConjunctiveQuery, mode: str) -> QueryClassification:
    """Check that the query is inside the supported fragment.

    Requirements (Section 1 and the paper's footnotes): the query must be
    hierarchical, must not repeat relation symbols, and every atom must have
    a non-empty schema.
    """
    if any(not atom.variables for atom in query.atoms):
        raise UnsupportedQueryError(
            "atoms with empty schemas are outside the supported fragment "
            "(paper footnote 1)"
        )
    if query.has_repeated_relation_symbols():
        raise UnsupportedQueryError(
            "queries with repeating relation symbols are not supported "
            "(paper footnote 2 handles them by sequences of updates)"
        )
    classification = classify(query)
    if not classification.hierarchical:
        raise UnsupportedQueryError(
            f"query {query} is not hierarchical (Definition 1); the IVM^ε "
            "trade-offs of this library only apply to hierarchical queries"
        )
    if mode not in (STATIC_MODE, DYNAMIC_MODE):
        raise ValueError(f"unknown evaluation mode {mode!r}")
    return classification


def choose_shard_key(query) -> str:
    """Pick the shard-key variable for hash-partitioned execution.

    A variable can route every base tuple to a single shard only when it
    occurs in *every* atom: then any two joining tuples agree on its value,
    so joins — and therefore delta propagation and rebalancing — stay
    entirely shard-local.  For a connected hierarchical query such a
    variable always exists (the atom sets of a hierarchical query form a
    laminar family, so connectivity forces one variable's atom set to cover
    the whole body); for a disconnected query none can, and the sharded
    engine is rejected here rather than silently producing cross-shard
    joins.

    Among the candidates the planner prefers a *free* variable (result
    tuples then carry the shard key, so shards enumerate disjoint results
    and the k-way merge never has to sum multiplicities across shards) and
    breaks remaining ties by sorted order, keeping the choice deterministic.
    """
    cq = coerce_query(query)
    candidates = [
        v for v in sorted(cq.variables) if len(cq.atoms_of(v)) == len(cq.atoms)
    ]
    if not candidates:
        raise UnsupportedQueryError(
            f"query {cq} has no variable occurring in every atom (it is "
            "disconnected), so hash-partitioning cannot keep joins "
            "shard-local; shard each connected component separately instead"
        )
    for variable in candidates:
        if variable in cq.free_variables:
            return variable
    return candidates[0]


def is_shardable(query) -> bool:
    """True when :func:`choose_shard_key` accepts the query."""
    try:
        choose_shard_key(query)
    except UnsupportedQueryError:
        return False
    return True


def validate_database(query: ConjunctiveQuery, database: Database) -> None:
    """Check that the database provides every relation with the right arity."""
    for atom in query.atoms:
        try:
            relation = database.relation(atom.relation)
        except UnknownRelationError:
            raise UnknownRelationError(
                f"query atom {atom} references relation {atom.relation!r} "
                "which is missing from the database"
            ) from None
        if len(relation.schema) != atom.arity:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity} but relation "
                f"{atom.relation!r} stores {len(relation.schema)} columns"
            )


@dataclass
class QueryPlan:
    """Everything derived from the query before touching the data."""

    query: ConjunctiveQuery
    mode: str
    classification: QueryClassification
    canonical_order: VariableOrder
    free_top: VariableOrder
    static_width: float
    dynamic_width: float

    def expected_exponents(self, epsilon: float) -> Dict[str, float]:
        """The asymptotic exponents promised by Theorems 2 and 4 for ``ε``.

        Returned as exponents of ``N``: preprocessing ``1 + (w−1)ε``,
        enumeration delay ``1 − ε``, amortized update ``δε`` (dynamic mode).
        """
        exponents = {
            "preprocessing": 1 + (self.static_width - 1) * epsilon,
            "delay": 1 - epsilon,
        }
        if self.mode == DYNAMIC_MODE:
            exponents["update"] = self.dynamic_width * epsilon
        return exponents

    def shard_key(self) -> str:
        """The planner-chosen shard-key variable (:func:`choose_shard_key`).

        Raises :class:`UnsupportedQueryError` when the query cannot be
        hash-partitioned (no variable occurs in every atom).
        """
        return choose_shard_key(self.query)

    def describe(self) -> str:
        lines = [
            f"query: {self.query}",
            f"classes: {', '.join(self.classification.classes)}",
            f"static width w = {self.static_width}",
            f"dynamic width δ = {self.dynamic_width}",
            "canonical variable order:",
            self.canonical_order.pretty(),
        ]
        return "\n".join(lines)


def plan_query(query, mode: str = DYNAMIC_MODE) -> QueryPlan:
    """Validate and analyse a query (data-independent part of planning)."""
    cq = coerce_query(query)
    classification = validate_query(cq, mode)
    canonical = build_canonical_variable_order(cq)
    free_top = free_top_order(canonical, cq)
    return QueryPlan(
        query=cq,
        mode=mode,
        classification=classification,
        canonical_order=canonical,
        free_top=free_top,
        static_width=static_width(cq),
        dynamic_width=dynamic_width(cq),
    )


def instantiate_plan(plan: QueryPlan, database: Database) -> SkewAwarePlan:
    """Bind a query plan to a concrete database (builds the view trees)."""
    validate_database(plan.query, database)
    return build_skew_aware_plan(plan.query, plan.canonical_order, database, plan.mode)
