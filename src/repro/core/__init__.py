"""Public facade: engines and planner."""

from repro.core.api import DynamicEngine, HierarchicalEngine, StaticEngine
from repro.core.planner import (
    QueryPlan,
    coerce_query,
    instantiate_plan,
    plan_query,
    validate_database,
    validate_query,
)

__all__ = [
    "DynamicEngine",
    "HierarchicalEngine",
    "QueryPlan",
    "StaticEngine",
    "coerce_query",
    "instantiate_plan",
    "plan_query",
    "validate_database",
    "validate_query",
]
