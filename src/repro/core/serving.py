"""Concurrent serving over one engine: a writer loop plus reader sessions.

:class:`EngineServer` wraps a :class:`~repro.core.api.HierarchicalEngine` or
:class:`~repro.sharding.ShardedEngine` for multi-threaded deployments where
one *writer* ingests update batches while any number of *reader sessions*
enumerate results concurrently.  Two serving modes bound the design space:

* ``mode="snapshot"`` — publish-on-commit serving.  After every batch the
  writer captures a :class:`~repro.snapshot.Snapshot` (an ``O(plan)``
  bookkeeping step, done while it still holds the write lock) and publishes
  it; a read grabs the currently published handle and enumerates it with
  *no* lock at all.  The write lock is held only for maintenance plus
  capture, never for enumeration, so readers overlap batch maintenance and
  each other, serving the last committed version while the next batch is
  mid-flight; copy-on-write keeps every published version intact.
* ``mode="locked"`` — the classical serialized read-after-write loop: a read
  holds the write lock for its entire enumeration, so every reader waits for
  the in-flight batch and blocks the writer (and all other readers) while it
  enumerates.  This is the baseline
  ``benchmarks/bench_concurrent_serving.py`` measures against.

Reads return a :class:`ReadTicket` carrying the observed engine version, so
callers can assert that every served result corresponds to a prefix of the
ingested stream (the concurrency test battery does exactly that).

Example::

    from repro import Database, HierarchicalEngine
    from repro.core.serving import EngineServer

    engine = HierarchicalEngine("Q(A, C) = R(A, B), S(B, C)").load(db)
    server = EngineServer(engine)                 # snapshot mode
    writer = server.start_writer(stream.batches(500))
    ticket = server.read()                        # never blocks on the writer
    print(ticket.version, len(ticket.pairs))
    writer.join()
    server.stop_writer()
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.data.schema import ValueTuple
from repro.exceptions import WriterFailedError

SERVING_MODES = ("snapshot", "locked")

# A commit listener: called after every committed ingestion event with
# ``(version, result_delta)`` — see EngineServer.on_commit.
CommitListener = Callable[[int, Dict[ValueTuple, int]], None]


@dataclass
class ServingStats:
    """Thread-safe counters describing one server's traffic.

    ``batches_applied`` counts *commits* — consolidated batches and
    single-tuple updates alike, since both flow through the same unified
    commit path (:meth:`EngineServer._commit`).
    """

    batches_applied: int = 0
    reads_served: int = 0
    retunes_applied: int = 0
    reshards_applied: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count_batch(self) -> None:
        with self._lock:
            self.batches_applied += 1

    def count_read(self) -> None:
        with self._lock:
            self.reads_served += 1

    def count_retune(self) -> None:
        with self._lock:
            self.retunes_applied += 1

    def count_reshard(self) -> None:
        with self._lock:
            self.reshards_applied += 1


class _PublishedVersion:
    """One published snapshot plus the pin accounting that retires it.

    Readers pin the entry for the duration of their read; the writer calls
    :meth:`retire` when a newer version supersedes it.  The underlying
    snapshot's ``close()`` runs exactly once, as soon as it is both retired
    and unpinned — so shard-local snapshot registries (which hold strong
    references) drain at the pace readers finish, never later.
    """

    __slots__ = ("snapshot", "_lock", "_pins", "_retired", "_closed")

    def __init__(self, snapshot, lock: threading.Lock) -> None:
        self.snapshot = snapshot
        self._lock = lock
        self._pins = 0
        self._retired = False
        self._closed = False

    def unpin(self) -> None:
        with self._lock:
            self._pins -= 1
            close_now = self._retired and self._pins == 0 and not self._closed
            if close_now:
                self._closed = True
        if close_now:
            self.snapshot.close()

    def retire(self) -> None:
        with self._lock:
            self._retired = True
            close_now = self._pins == 0 and not self._closed
            if close_now:
                self._closed = True
        if close_now:
            self.snapshot.close()


@dataclass(frozen=True)
class ReadTicket:
    """One served read: the observed engine version and the enumerated prefix
    (the full result unless the read was issued with a ``limit``)."""

    version: int
    pairs: Tuple[Tuple[ValueTuple, int], ...]

    def result(self) -> Dict[ValueTuple, int]:
        return {tup: mult for tup, mult in self.pairs}


class EngineServer:
    """Serve one loaded engine to a writer thread and N reader sessions."""

    def __init__(self, engine, mode: str = "snapshot", controller=None) -> None:
        if mode not in SERVING_MODES:
            raise ValueError(
                f"unknown serving mode {mode!r}; choose one of {SERVING_MODES}"
            )
        self.engine = engine
        self.mode = mode
        # Optional repro.adaptive.AdaptiveController: consulted after every
        # committed batch (while the write lock is still held, before the
        # new version is published), so the served ε tracks the observed
        # read/write mix with no extra thread.  Reads feed the engine's
        # telemetry with the enumeration costs they actually paid —
        # snapshot reads bypass engine.enumerate(), so the server records
        # them explicitly.
        self.controller = controller
        self.stats = ServingStats()
        self._write_lock = threading.Lock()
        self._writer_thread: Optional[threading.Thread] = None
        self._writer_stop = threading.Event()
        self._writer_error: Optional[BaseException] = None
        # The currently published snapshot (snapshot mode): swapped by the
        # writer after each commit, read without holding the write lock.
        # Superseded snapshots cannot simply be dropped: readers may still
        # be enumerating them, and sharded snapshots hold shard-local
        # registry entries by strong reference (only the single-engine
        # tracker is weak).  Every read pins the published entry for its
        # duration; the writer retires the old entry on publish, and the
        # entry's close() runs as soon as the pin count drains to zero.
        self._published: Optional[_PublishedVersion] = None
        self._publish_lock = threading.Lock()
        # Commit listeners (the push-based serving hook): called after
        # every committed ingestion event, under the write lock, with the
        # new engine version and the commit's net result delta.  The first
        # registration turns the engine's result-delta capture on.
        self._commit_listeners: List[CommitListener] = []
        # Gates the controller-driven auto-reshard: set under the write
        # lock when a proposal is accepted, cleared when the reshard
        # finishes, so concurrent commits never start a second one.
        self._resharding = False

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def _publish_locked(self) -> "_PublishedVersion":
        """Swap in a fresh capture; caller holds the write lock."""
        entry = _PublishedVersion(self.engine.snapshot(), self._publish_lock)
        with self._publish_lock:
            previous, self._published = self._published, entry
        if previous is not None:
            previous.retire()
        return entry

    def on_commit(self, listener: CommitListener) -> None:
        """Register a listener called after every committed ingestion event.

        The listener receives ``(version, result_delta)`` — the engine
        version after the commit (auto-retune included) and the commit's
        net result-level delta, drained from the engine's capture hook
        (:meth:`~repro.core.api.HierarchicalEngine.set_delta_capture`).
        Called under the write lock, *after* the new version is published,
        so listeners observe commits serialized and in version order;
        :class:`repro.net.EngineTCPServer` fans these out to its
        subscribers.  Registering the first listener enables delta capture
        on the engine (dynamic engines only; on a static engine listeners
        simply receive empty deltas).
        """
        if not self._commit_listeners:
            set_capture = getattr(self.engine, "set_delta_capture", None)
            if set_capture is not None and getattr(self.engine, "mode", None) == "dynamic":
                set_capture(True)
        self._commit_listeners.append(listener)

    def _commit(self, ingest: Callable[[], None]) -> None:
        """The single commit path shared by batches and single updates.

        Ingest, consult the adaptive controller (the commit may auto-retune
        the engine — the published snapshot then already serves the new ε,
        so readers never observe a half-retuned version), publish, and
        notify commit listeners — all under the write lock; then count the
        commit.  Keeping single-tuple updates on this exact path is what
        makes them auto-retune and appear in :class:`ServingStats` like any
        batch (they previously bypassed all three).
        """
        pending_reshard: Optional[int] = None
        with self._write_lock:
            ingest()
            if self.controller is not None:
                if self.controller.maybe_retune() is not None:
                    self.stats.count_retune()
                # The capacity knob: accept at most one proposal at a time
                # (the flag is only ever set under this lock) and execute
                # it *after* the commit releases the lock — the expensive
                # build phase must not stall the writer.
                propose = getattr(self.controller, "propose_shards", None)
                if (
                    propose is not None
                    and not self._resharding
                    and hasattr(self.engine, "begin_reshard")
                ):
                    pending_reshard = propose()
                    if pending_reshard is not None:
                        self._resharding = True
            if self.mode == "snapshot":
                self._publish_locked()
            if self._commit_listeners:
                drain = getattr(self.engine, "drain_result_delta", None)
                delta = drain() if drain is not None else {}
                version = self.engine.version
                for listener in self._commit_listeners:
                    listener(version, delta)
        self.stats.count_batch()
        if pending_reshard is not None:
            try:
                self.reshard(pending_reshard)
                self.controller.record_reshard(pending_reshard)
            finally:
                self._resharding = False

    def apply_batch(self, updates) -> None:
        """Ingest one consolidated batch, then publish the new version."""
        self._commit(lambda: self.engine.apply_batch(updates))

    def apply_update(self, update) -> None:
        """Ingest one single-tuple update through the same commit path.

        Identical contract to :meth:`apply_batch` — controller consult,
        retune counting, publish, listener notification, and
        ``stats.count_batch()`` (a single update is a commit of one).
        """
        self._commit(lambda: self.engine.apply(update))

    def reshard(self, new_count: int) -> None:
        """Change the sharded engine's shard count while serving.

        Drives the engine's three-phase protocol so the write lock is
        held only for the brief cut and swap phases — the expensive build
        (re-route every shard's base data into a fresh fleet) runs with
        the lock *released*, the writer keeps committing, and the engine
        buffers the tail for replay at the swap.  Subscribers ride
        through exactly like a retune: the post-swap publish carries the
        reshard's version tick with an **empty** delta (the result is
        unchanged by construction — a reshard moves tuples between
        shards, never in or out of the result), so mirrors advance their
        version stamp without phantom updates.  Readers pinned on the
        pre-reshard snapshot finish against the retired fleet.
        """
        if not hasattr(self.engine, "begin_reshard"):
            raise ValueError(
                "reshard needs a sharded engine; "
                f"got {type(self.engine).__name__}"
            )
        with self._write_lock:
            plan = self.engine.begin_reshard(new_count)
        try:
            self.engine.build_reshard(plan)
        except BaseException:
            with self._write_lock:
                self.engine.abort_reshard(plan)
            raise
        with self._write_lock:
            self.engine.finish_reshard(plan)
            if self.mode == "snapshot":
                self._publish_locked()
            if self._commit_listeners:
                version = self.engine.version
                for listener in self._commit_listeners:
                    listener(version, {})
        self.stats.count_reshard()

    def start_writer(self, batches: Iterable) -> threading.Thread:
        """Run a writer loop ingesting ``batches`` on a background thread.

        The loop stops when the iterable is exhausted or
        :meth:`stop_writer` is called; an exception in the writer is
        captured and re-raised by :meth:`stop_writer`.
        """
        if self._writer_thread is not None and self._writer_thread.is_alive():
            raise RuntimeError("a writer loop is already running")
        self._writer_stop.clear()
        self._writer_error = None

        def loop() -> None:
            try:
                for batch in batches:
                    if self._writer_stop.is_set():
                        break
                    self.apply_batch(batch)
            except BaseException as exc:  # noqa: BLE001 - re-raised on stop
                self._writer_error = exc

        thread = threading.Thread(
            target=loop, name="repro-engine-writer", daemon=True
        )
        self._writer_thread = thread
        thread.start()
        return thread

    def check_writer(self) -> None:
        """Raise promptly if a started writer loop has died.

        Every :meth:`read` (and the networked server's loops) consults
        this probe, so a dead writer surfaces at the next read as a
        :class:`~repro.exceptions.WriterFailedError` — with the original
        exception attached as ``__cause__`` — instead of readers serving a
        silently frozen version until someone happens to call
        :meth:`stop_writer`.  The stored error is *not* cleared:
        ``stop_writer`` still re-raises the original.
        """
        error = self._writer_error
        if error is not None:
            raise WriterFailedError(
                f"the writer loop died with {type(error).__name__}: {error}; "
                "the served version is frozen — stop_writer() re-raises the "
                "original error"
            ) from error

    def stop_writer(self, timeout: Optional[float] = None) -> None:
        """Signal the writer loop to stop, join it, and surface its error.

        If the loop is still inside a batch when ``timeout`` expires the
        thread handle is kept — a later :meth:`start_writer` keeps being
        rejected and a later :meth:`stop_writer` can join it — instead of
        orphaning a loop that would interleave with its replacement.
        """
        self._writer_stop.set()
        thread = self._writer_thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                raise RuntimeError(
                    "the writer loop did not stop within the timeout; it is "
                    "still finishing its current batch — call stop_writer() "
                    "again to wait for it"
                )
            self._writer_thread = None
        if self._writer_error is not None:
            error, self._writer_error = self._writer_error, None
            raise error

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture a private snapshot, write lock held only for the capture.

        Unlike :meth:`read`, this waits for any in-flight batch (a capture
        is only meaningful at a commit boundary); the caller owns the
        returned handle and should ``close()`` it when done.
        """
        with self._write_lock:
            return self.engine.snapshot()

    def _current_pinned(self) -> "_PublishedVersion":
        """Pin and return the published entry, capturing version 0 if needed.

        The pin is taken under the publish lock, so a concurrent
        :meth:`_publish_locked` either swaps before (we pin the newer
        entry) or retires the entry only after our pin is counted.
        """
        while True:
            with self._publish_lock:
                entry = self._published
                if entry is not None:
                    entry._pins += 1
                    return entry
            with self._write_lock:
                if self._published is None:
                    self._publish_locked()

    @staticmethod
    def _consume(enumerator, limit: Optional[int]) -> Tuple:
        if limit is None:
            return tuple(enumerator)
        pairs = []
        for item in enumerator:
            pairs.append(item)
            if len(pairs) >= limit:
                break
        return tuple(pairs)

    def read(self, limit: Optional[int] = None) -> ReadTicket:
        """Serve one consistent read session.

        In snapshot mode the read enumerates the currently *published*
        snapshot — the last committed version — without taking any lock, so
        it never waits for an in-flight batch; in locked mode the whole
        enumeration happens under the write lock (the serialized
        read-after-write baseline).  Either way the returned ticket's
        ``pairs`` are a torn-read-free enumeration prefix of one engine
        version — the full result with ``limit=None``, or the first
        ``limit`` tuples (a page, in the paper's constant-delay enumeration
        model) otherwise.  Raises
        :class:`~repro.exceptions.WriterFailedError` if a started writer
        loop has died (see :meth:`check_writer`).
        """
        self.check_writer()
        started = time.perf_counter()
        if self.mode == "snapshot":
            entry = self._current_pinned()
            try:
                pairs = self._consume(entry.snapshot.enumerate(), limit)
                version = entry.snapshot.version
            finally:
                entry.unpin()
            # snapshot reads bypass engine.enumerate(), so record the read
            # into the engine's telemetry here (live reads in locked mode
            # record themselves through the enumerator)
            telemetry = getattr(self.engine, "telemetry", None)
            if telemetry is not None:
                telemetry.record_read(len(pairs), time.perf_counter() - started)
        else:
            with self._write_lock:
                version = self.engine.version
                pairs = self._consume(self.engine.enumerate(), limit)
        self.stats.count_read()
        return ReadTicket(version=version, pairs=pairs)

    def aggregate(self, spec, maintained: bool = True):
        """One consistent aggregate read: ``(version, {group: (support, element)})``.

        Commits mutate the engine's maintained aggregate state under the
        write lock, so the read takes it too (in *both* serving modes) —
        the returned elements and version always belong to one committed
        engine state.  Maintained reads are O(groups), so the lock hold is
        brief even when the result itself is huge; the networked server's
        aggregate ops and subscription resyncs all come through here.
        """
        self.check_writer()
        with self._write_lock:
            version = getattr(self.engine, "version", 0)
            elements = self.engine.aggregate_elements(spec, maintained=maintained)
        self.stats.count_read()
        return version, elements

    def run_readers(
        self,
        count: int,
        duration_seconds: float,
        limit: Optional[int] = None,
    ) -> List[ReadTicket]:
        """Run ``count`` reader sessions in parallel for a wall-clock window.

        Each session loops :meth:`read` until the deadline; the tickets of
        every session are returned (used by the stress tests and the
        concurrent-serving benchmark).  Reader exceptions propagate — and
        the *first* error aborts every peer session via a shared abort
        event, so a failed reader surfaces after at most one in-flight
        read per peer instead of burning the full wall-clock window.
        """
        deadline = time.perf_counter() + duration_seconds
        tickets: List[List[ReadTicket]] = [[] for _ in range(count)]
        errors: List[BaseException] = []
        abort = threading.Event()

        def session(slot: int) -> None:
            try:
                while not abort.is_set() and time.perf_counter() < deadline:
                    tickets[slot].append(self.read(limit))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                abort.set()

        threads = [
            threading.Thread(
                target=session, args=(slot,), name=f"repro-reader-{slot}"
            )
            for slot in range(count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [ticket for session_tickets in tickets for ticket in session_tickets]
