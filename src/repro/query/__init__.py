"""Query layer: atoms, conjunctive queries, hypergraphs, classification."""

from repro.query.atom import Atom, atom
from repro.query.classes import (
    QueryClassification,
    classify,
    delta_index,
    is_delta_i_hierarchical,
    is_hierarchical,
    is_q_hierarchical,
)
from repro.query.conjunctive import ConjunctiveQuery, query
from repro.query.hypergraph import (
    Hypergraph,
    is_alpha_acyclic,
    is_free_connex,
    join_tree,
    verify_running_intersection,
)
from repro.query.parser import format_query, parse_query

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Hypergraph",
    "QueryClassification",
    "atom",
    "classify",
    "delta_index",
    "format_query",
    "is_alpha_acyclic",
    "is_delta_i_hierarchical",
    "is_free_connex",
    "is_hierarchical",
    "is_q_hierarchical",
    "join_tree",
    "parse_query",
    "query",
    "verify_running_intersection",
]
