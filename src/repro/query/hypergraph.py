"""Query hypergraphs, GYO reduction, α-acyclicity, and join trees.

The hypergraph of a query has one node per variable and one hyperedge per
atom (Section 3).  α-acyclicity is decided with the GYO (Graham / Yu–Özsoyoğlu)
reduction: repeatedly remove *ear* hyperedges (edges whose variables are
either private to the edge or contained in another edge) and isolated
variables; the query is α-acyclic iff the reduction empties the hypergraph.
A join tree is produced as a by-product of the reduction, which the tests use
to validate the free-connex characterisation (the paper's definition via a
join tree including the head atom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class Hypergraph:
    """A multiset of named hyperedges over a set of vertices."""

    edges: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_query(cls, query: ConjunctiveQuery) -> "Hypergraph":
        """Build the hypergraph of a query; edge names follow atom positions."""
        edges: Dict[str, FrozenSet[str]] = {}
        for i, atom in enumerate(query.atoms):
            edges[f"{atom.relation}#{i}"] = atom.variable_set
        return cls(edges)

    @classmethod
    def from_edge_sets(cls, edge_sets: Iterable[Iterable[str]]) -> "Hypergraph":
        """Build a hypergraph from anonymous variable sets."""
        return cls({f"e{i}": frozenset(edge) for i, edge in enumerate(edge_sets)})

    @property
    def vertices(self) -> FrozenSet[str]:
        result: set = set()
        for edge in self.edges.values():
            result.update(edge)
        return frozenset(result)

    def add_edge(self, name: str, variables: Iterable[str]) -> None:
        self.edges[name] = frozenset(variables)

    def copy(self) -> "Hypergraph":
        return Hypergraph(dict(self.edges))

    # ------------------------------------------------------------------
    # GYO reduction
    # ------------------------------------------------------------------
    def gyo_reduction(self) -> Tuple["Hypergraph", List[Tuple[str, Optional[str]]]]:
        """Run the GYO reduction.

        Returns the (possibly non-empty) residual hypergraph and the list of
        ear eliminations performed, as pairs ``(removed_edge, witness_edge)``
        where the witness is the edge the ear was absorbed into (``None`` for
        the last remaining edge).
        """
        edges: Dict[str, set] = {name: set(vs) for name, vs in self.edges.items()}
        eliminations: List[Tuple[str, Optional[str]]] = []
        changed = True
        while changed and len(edges) > 1:
            changed = False
            # remove vertices that occur in exactly one edge
            occurrence: Dict[str, List[str]] = {}
            for name, vs in edges.items():
                for v in vs:
                    occurrence.setdefault(v, []).append(name)
            for v, owners in occurrence.items():
                if len(owners) == 1:
                    edges[owners[0]].discard(v)
                    changed = True
            # remove edges contained in other edges (ears)
            names = list(edges)
            for name in names:
                if name not in edges:
                    continue
                for other in edges:
                    if other == name:
                        continue
                    if edges[name] <= edges[other]:
                        eliminations.append((name, other))
                        del edges[name]
                        changed = True
                        break
        if len(edges) == 1:
            last = next(iter(edges))
            eliminations.append((last, None))
            edges = {}
        residual = Hypergraph({name: frozenset(vs) for name, vs in edges.items()})
        return residual, eliminations

    def is_alpha_acyclic(self) -> bool:
        """True when the GYO reduction empties the hypergraph."""
        if not self.edges:
            return True
        residual, _ = self.gyo_reduction()
        return not residual.edges


def is_alpha_acyclic(query: ConjunctiveQuery) -> bool:
    """α-acyclicity of a conjunctive query via GYO reduction."""
    return Hypergraph.from_query(query).is_alpha_acyclic()


def is_free_connex(query: ConjunctiveQuery) -> bool:
    """Free-connex test.

    A query is free-connex iff it is α-acyclic and remains α-acyclic after
    adding an atom over exactly its free variables (Brault-Baron's
    characterisation, used in the paper's Appendix B.3 and D).  Queries with
    an empty head are free-connex exactly when they are α-acyclic.
    """
    graph = Hypergraph.from_query(query)
    if not graph.is_alpha_acyclic():
        return False
    if not query.head:
        return True
    extended = graph.copy()
    extended.add_edge("__head__", query.head)
    return extended.is_alpha_acyclic()


def join_tree(query: ConjunctiveQuery) -> Optional[nx.Graph]:
    """Return a join tree of an α-acyclic query, or ``None`` if cyclic.

    The join tree is built by connecting each eliminated ear to its witness
    edge from the GYO reduction; by construction it satisfies the running
    intersection property.  Nodes are atom labels ``R#i``.
    """
    graph = Hypergraph.from_query(query)
    residual, eliminations = graph.gyo_reduction()
    if residual.edges:
        return None
    tree = nx.Graph()
    for name in graph.edges:
        tree.add_node(name, variables=graph.edges[name])
    for removed, witness in eliminations:
        if witness is not None:
            tree.add_edge(removed, witness)
    # eliminations may connect an ear to a witness that was itself removed
    # later; the result is still a forest over the atom labels.  Connect any
    # remaining isolated roots arbitrarily to keep a single tree per
    # connected component of the query.
    return tree


def verify_running_intersection(tree: nx.Graph) -> bool:
    """Check the running-intersection property of a candidate join tree.

    For every variable, the nodes whose edge contains it must induce a
    connected subtree.  Used by tests to validate :func:`join_tree`.
    """
    variables: set = set()
    for _node, data in tree.nodes(data=True):
        variables.update(data["variables"])
    for variable in variables:
        nodes = [n for n, d in tree.nodes(data=True) if variable in d["variables"]]
        subgraph = tree.subgraph(nodes)
        if nodes and not nx.is_connected(subgraph):
            return False
    return True
