"""A small textual syntax for conjunctive queries.

Queries are written in the paper's notation::

    Q(A, C) = R(A, B), S(B, C)
    Q()     = R(A, B), S(B)          # Boolean query
    Q(A, D, E) = R(A,B,C), S(A,B,D), T(A,E)

The parser exists so examples, tests, and benchmarks can state queries
exactly as they appear in the paper, which makes the reproduction easy to
audit against the original text.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.exceptions import UnsupportedQueryError
from repro.query.atom import Atom
from repro.query.conjunctive import ConjunctiveQuery

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9']*)\s*\(([^()]*)\)\s*")
_HEAD_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z_0-9']*)\s*\(([^()]*)\)\s*=\s*(.+)$", re.DOTALL
)


def _split_variables(raw: str) -> Tuple[str, ...]:
    raw = raw.strip()
    if not raw:
        return ()
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _split_atoms(body: str) -> List[str]:
    """Split the body on commas that are not nested inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from the paper's textual notation."""
    match = _HEAD_RE.match(text)
    if not match:
        raise UnsupportedQueryError(
            f"could not parse query {text!r}: expected 'Name(vars) = body'"
        )
    name, head_raw, body = match.groups()
    head = _split_variables(head_raw)
    atoms: List[Atom] = []
    for atom_text in _split_atoms(body):
        atom_match = _ATOM_RE.fullmatch(atom_text)
        if not atom_match:
            raise UnsupportedQueryError(
                f"could not parse atom {atom_text!r} in query {text!r}"
            )
        relation, variables_raw = atom_match.groups()
        atoms.append(Atom(relation, _split_variables(variables_raw)))
    return ConjunctiveQuery(head, atoms, name=name)


def format_query(query: ConjunctiveQuery) -> str:
    """Format a query back into the textual notation accepted by the parser."""
    return str(query)
