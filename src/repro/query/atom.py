"""Query atoms.

An atom ``R(X₁,…,Xₙ)`` pairs a relation symbol with a schema of variables.
Atoms are hashable value objects so they can be used as hypergraph edges,
dictionary keys, and members of ``atoms(X)`` sets exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.data.schema import Schema
from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Atom:
    """A query atom: relation symbol plus ordered tuple of variables."""

    relation: str
    variables: Schema

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))
        if len(set(self.variables)) != len(self.variables):
            raise SchemaError(
                f"atom {self.relation}({', '.join(self.variables)}) repeats a variable; "
                "self-joins on a single atom are not part of the supported fragment"
            )

    @property
    def arity(self) -> int:
        """Number of variables in the atom."""
        return len(self.variables)

    @property
    def variable_set(self) -> frozenset:
        """The variables as a frozen set (hyperedge view)."""
        return frozenset(self.variables)

    def contains(self, variable: str) -> bool:
        """True when ``variable`` occurs in this atom."""
        return variable in self.variables

    def covers(self, variables) -> bool:
        """True when every variable in ``variables`` occurs in this atom."""
        return set(variables) <= set(self.variables)

    def rename(self, relation: str) -> "Atom":
        """Return a copy of this atom with a different relation symbol."""
        return Atom(relation, self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom({self.relation!r}, {self.variables!r})"


def atom(relation: str, *variables: str) -> Atom:
    """Convenience constructor: ``atom("R", "A", "B")`` = ``R(A, B)``."""
    return Atom(relation, tuple(variables))
