"""Classification of conjunctive queries.

Implements the syntactic classes used throughout the paper:

* **hierarchical** (Definition 1): for any two variables, their atom sets are
  disjoint or one contains the other;
* **q-hierarchical** ([10], restated in Section 3): hierarchical, and whenever
  ``atoms(A) ⊂ atoms(B)`` for a free ``A``, then ``B`` is also free;
* **free-connex**: α-acyclic and still α-acyclic after adding the head atom
  (delegated to :mod:`repro.query.hypergraph`);
* **δ_i-hierarchical** (Definition 5): ``i`` is the smallest number such that
  for every bound variable ``X`` and every atom ``R(Y) ∈ atoms(X)`` there are
  ``i`` atoms whose schemas together with ``Y`` cover all free variables of
  ``atoms(X)``.

Proposition 6 (q-hierarchical ⇔ δ₀-hierarchical), Proposition 7 (free-connex
hierarchical ⇒ δ₀ or δ₁) and Proposition 8 (δ_i ⇔ dynamic width i) are all
checked in the test suite against these functions and the width module.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Optional, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.query.hypergraph import is_alpha_acyclic, is_free_connex


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Definition 1: atom sets of any two variables are disjoint or nested."""
    variables = sorted(query.variables)
    atom_sets = {v: frozenset(query.atoms_of(v)) for v in variables}
    for first, second in combinations(variables, 2):
        a, b = atom_sets[first], atom_sets[second]
        if a & b and not (a <= b or b <= a):
            return False
    return True


def is_q_hierarchical(query: ConjunctiveQuery) -> bool:
    """q-hierarchical test ([10]).

    Hierarchical, and for every free variable ``A``: if some variable ``B``
    satisfies ``atoms(A) ⊂ atoms(B)`` then ``B`` must be free.
    """
    if not is_hierarchical(query):
        return False
    atom_sets = {v: frozenset(query.atoms_of(v)) for v in query.variables}
    for free_var in query.free_variables:
        for other in query.variables:
            if other == free_var:
                continue
            if atom_sets[free_var] < atom_sets[other] and other not in query.free_variables:
                return False
    return True


def _min_atoms_covering(
    query: ConjunctiveQuery, targets: FrozenSet[str], candidates
) -> Optional[int]:
    """Smallest number of candidate atoms whose schemas cover ``targets``.

    Returns ``None`` when no subset of candidates covers the targets (which
    cannot happen for the δ_i computation on hierarchical queries, but the
    guard keeps the helper total).
    """
    if not targets:
        return 0
    candidates = list(candidates)
    for size in range(1, len(candidates) + 1):
        for subset in combinations(candidates, size):
            covered: set = set()
            for atom in subset:
                covered.update(atom.variables)
            if targets <= covered:
                return size
    return None


def delta_index(query: ConjunctiveQuery) -> int:
    """The index ``i`` for which the hierarchical query is δ_i-hierarchical.

    Definition 5: the smallest ``i`` such that for each bound variable ``X``
    and atom ``R(Y) ∈ atoms(X)`` there are ``i`` atoms covering
    ``free(atoms(X)) − Y``.  By Lemma 34 only atoms of ``X`` can contribute,
    so the search is restricted to ``atoms(X)``.

    By Proposition 8 this equals the dynamic width of the query, which the
    test suite asserts against :mod:`repro.widths.dynamic_width`.
    """
    worst = 0
    for bound_var in query.bound_variables:
        atoms_of_x = query.atoms_of(bound_var)
        free_in_x = query.free_of_atoms(atoms_of_x)
        for atom in atoms_of_x:
            remaining = frozenset(free_in_x - set(atom.variables))
            needed = _min_atoms_covering(query, remaining, atoms_of_x)
            if needed is None:
                needed = _min_atoms_covering(query, remaining, query.atoms)
            if needed is None:
                raise AssertionError(
                    "free variables of a bound variable's atoms could not be covered; "
                    "is the query hierarchical?"
                )
            worst = max(worst, needed)
    return worst


def is_delta_i_hierarchical(query: ConjunctiveQuery, i: int) -> bool:
    """True when the query is hierarchical with δ-index exactly ``i``."""
    return is_hierarchical(query) and delta_index(query) == i


@dataclass(frozen=True)
class QueryClassification:
    """A summary of every class membership relevant to the paper's Figure 2."""

    alpha_acyclic: bool
    free_connex: bool
    hierarchical: bool
    q_hierarchical: bool
    delta_index: Optional[int]

    @property
    def classes(self) -> Tuple[str, ...]:
        """Human-readable list of class names the query belongs to."""
        names = ["conjunctive"]
        if self.alpha_acyclic:
            names.append("alpha-acyclic")
        if self.free_connex:
            names.append("free-connex")
        if self.hierarchical:
            names.append("hierarchical")
            names.append(f"delta_{self.delta_index}-hierarchical")
        if self.q_hierarchical:
            names.append("q-hierarchical")
        return tuple(names)


def classify(query: ConjunctiveQuery) -> QueryClassification:
    """Compute all class memberships of a query at once."""
    hierarchical = is_hierarchical(query)
    return QueryClassification(
        alpha_acyclic=is_alpha_acyclic(query),
        free_connex=is_free_connex(query),
        hierarchical=hierarchical,
        q_hierarchical=is_q_hierarchical(query),
        delta_index=delta_index(query) if hierarchical else None,
    )
