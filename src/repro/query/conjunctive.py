"""Conjunctive queries.

A conjunctive query (CQ) has the form ``Q(F) = R₁(X₁), …, Rₙ(Xₙ)`` (Section 3
of the paper).  :class:`ConjunctiveQuery` stores the head (free) variables
and the body atoms and exposes the vocabulary used throughout the paper:
``vars(Q)``, ``free(Q)``, ``bound(Q)``, ``atoms(Q)``, ``atoms(X)``, whether
the query is *full*, its connected components, and so on.

Classification predicates (hierarchical, q-hierarchical, free-connex,
δ_i-hierarchical) live in :mod:`repro.query.classes`; width measures live in
:mod:`repro.widths`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.data.schema import Schema
from repro.exceptions import UnsupportedQueryError
from repro.query.atom import Atom


class ConjunctiveQuery:
    """A conjunctive query ``Q(free) = atom₁, …, atomₙ``."""

    def __init__(
        self,
        head: Iterable[str],
        atoms: Iterable[Atom],
        name: str = "Q",
    ) -> None:
        self.name = name
        self.head: Schema = tuple(head)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        if len(set(self.head)) != len(self.head):
            raise UnsupportedQueryError(
                f"query {name!r} repeats a free variable in its head"
            )
        if not self.atoms:
            raise UnsupportedQueryError("a conjunctive query needs at least one atom")
        all_vars = self.variables
        missing = set(self.head) - all_vars
        if missing:
            raise UnsupportedQueryError(
                f"free variables {sorted(missing)} do not occur in any atom"
            )

    # ------------------------------------------------------------------
    # vocabulary of the paper
    # ------------------------------------------------------------------
    @property
    def variables(self) -> FrozenSet[str]:
        """``vars(Q)``: all variables occurring in the body."""
        result: set = set()
        for atom in self.atoms:
            result.update(atom.variables)
        return frozenset(result)

    @property
    def free_variables(self) -> FrozenSet[str]:
        """``free(Q)``: the head variables, as a set."""
        return frozenset(self.head)

    @property
    def bound_variables(self) -> FrozenSet[str]:
        """``bound(Q) = vars(Q) − free(Q)``."""
        return self.variables - self.free_variables

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation symbols of the atoms, in body order."""
        return tuple(atom.relation for atom in self.atoms)

    @property
    def is_full(self) -> bool:
        """True when every variable is free."""
        return self.free_variables == self.variables

    @property
    def is_boolean(self) -> bool:
        """True when the query has no free variables."""
        return not self.head

    def has_repeated_relation_symbols(self) -> bool:
        """True when two atoms share a relation symbol (self-join)."""
        names = self.relation_names
        return len(set(names)) != len(names)

    def atoms_of(self, variable: str) -> Tuple[Atom, ...]:
        """``atoms(X)``: the atoms whose schema contains ``variable``."""
        return tuple(atom for atom in self.atoms if atom.contains(variable))

    def atom_for_relation(self, relation: str) -> Optional[Atom]:
        """Return the atom with the given relation symbol (None if absent)."""
        for atom in self.atoms:
            if atom.relation == relation:
                return atom
        return None

    def vars_of_atoms(self, atoms: Iterable[Atom]) -> FrozenSet[str]:
        """Union of the schemas of the given atoms (``vars(atoms(X))``)."""
        result: set = set()
        for atom in atoms:
            result.update(atom.variables)
        return frozenset(result)

    def free_of_atoms(self, atoms: Iterable[Atom]) -> FrozenSet[str]:
        """Free variables occurring in the given atoms (``free(atoms(X))``)."""
        return self.vars_of_atoms(atoms) & self.free_variables

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_components(self) -> List["ConjunctiveQuery"]:
        """Split the query into its connected components.

        Two atoms are connected when they share a variable.  Atoms without
        variables would each form their own component; such atoms are ruled
        out by the supported fragment (see :mod:`repro.core.planner`).
        Each component keeps the head variables it contains.
        """
        remaining = list(self.atoms)
        components: List[List[Atom]] = []
        while remaining:
            seed = remaining.pop(0)
            component = [seed]
            component_vars = set(seed.variables)
            changed = True
            while changed:
                changed = False
                still_remaining = []
                for atom in remaining:
                    if component_vars & set(atom.variables):
                        component.append(atom)
                        component_vars.update(atom.variables)
                        changed = True
                    else:
                        still_remaining.append(atom)
                remaining = still_remaining
            components.append(component)
        result = []
        for i, component in enumerate(components):
            component_vars = self.vars_of_atoms(component)
            head = tuple(v for v in self.head if v in component_vars)
            suffix = "" if len(components) == 1 else f"_{i}"
            result.append(
                ConjunctiveQuery(head, component, name=f"{self.name}{suffix}")
            )
        return result

    def restrict_to_atoms(
        self, atoms: Sequence[Atom], head: Optional[Iterable[str]] = None, name: str = ""
    ) -> "ConjunctiveQuery":
        """Return the sub-query over ``atoms`` with the given (or inherited) head.

        Used by the view-tree construction to form the residual queries
        ``Q_X`` of Figure 11.
        """
        atoms = tuple(atoms)
        atom_vars = self.vars_of_atoms(atoms)
        if head is None:
            head_vars: Tuple[str, ...] = tuple(
                v for v in self.head if v in atom_vars
            )
        else:
            head_vars = tuple(head)
        return ConjunctiveQuery(head_vars, atoms, name=name or f"{self.name}_sub")

    def with_head(self, head: Iterable[str], name: str = "") -> "ConjunctiveQuery":
        """Return the same body with a different set of free variables."""
        return ConjunctiveQuery(tuple(head), self.atoms, name=name or self.name)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            set(self.head) == set(other.head)
            and set(self.atoms) == set(other.atoms)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.head), frozenset(self.atoms)))

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"{self.name}({', '.join(self.head)}) = {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjunctiveQuery({self!s})"


def query(head: Sequence[str], *atoms: Atom, name: str = "Q") -> ConjunctiveQuery:
    """Convenience constructor mirroring the paper's notation."""
    return ConjunctiveQuery(tuple(head), atoms, name=name)
