"""Reusable experiment drivers shared by the benchmark suite and the examples.

Each driver corresponds to a measurement pattern that recurs across the
paper's figures:

* :func:`tradeoff_point` — measure preprocessing / update / delay for one
  (query, database, ε) combination (a single point of Figure 1);
* :func:`sweep_epsilon` — the full ε sweep for one database (the blue curves
  of Figures 1 and 3);
* :func:`scaling_experiment` — repeat a workload at several database sizes
  and fit the growth exponents of each runtime component against the
  theoretical exponents of Theorems 2 and 4;
* :func:`compare_engines` — run our engine and the baselines on the same
  workload (the comparison rows of Figures 4 and 5).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bench.fitting import ExponentFit, fit_exponent, theoretical_exponents
from repro.bench.timing import (
    Measurement,
    TradeoffPoint,
    measure_enumeration_delay,
    measure_update_stream,
)
from repro.core.api import HierarchicalEngine
from repro.data.database import Database
from repro.data.update import Update, UpdateStream


def tradeoff_point(
    query,
    database: Database,
    epsilon: float,
    mode: str = "dynamic",
    updates: Optional[Iterable[Update]] = None,
    delay_limit: Optional[int] = 2000,
    enable_rebalancing: bool = True,
) -> Tuple[HierarchicalEngine, TradeoffPoint]:
    """Measure one point of the trade-off space."""
    engine = HierarchicalEngine(
        query,
        epsilon=epsilon,
        mode=mode,
        enable_rebalancing=enable_rebalancing,
        copy_database=True,
    )
    engine.load(database)
    point = TradeoffPoint(
        epsilon=epsilon,
        database_size=database.size,
        preprocessing_seconds=engine.preprocessing_seconds or 0.0,
        view_size=engine.view_size(),
    )
    if updates is not None and mode == "dynamic":
        point.update = measure_update_stream(engine, updates)
    point.delay, _produced = measure_enumeration_delay(engine, limit=delay_limit)
    return engine, point


def sweep_epsilon(
    query,
    database: Database,
    epsilons: Sequence[float],
    mode: str = "dynamic",
    updates_factory: Optional[Callable[[], UpdateStream]] = None,
    delay_limit: Optional[int] = 2000,
) -> List[TradeoffPoint]:
    """Measure every ε on the same database (and same update stream)."""
    points: List[TradeoffPoint] = []
    for epsilon in epsilons:
        updates = updates_factory() if updates_factory is not None else None
        _engine, point = tradeoff_point(
            query, database, epsilon, mode=mode, updates=updates, delay_limit=delay_limit
        )
        points.append(point)
    return points


def scaling_experiment(
    query,
    database_factory: Callable[[int], Database],
    sizes: Sequence[int],
    epsilon: float,
    mode: str = "dynamic",
    updates_factory: Optional[Callable[[Database, int], UpdateStream]] = None,
    delay_limit: Optional[int] = 1000,
) -> Dict[str, object]:
    """Fit measured growth exponents against the theory for one ε.

    Returns a dict with the per-size points, the fitted exponents per
    component, and the theoretical exponents for the query's widths.
    """
    points: List[TradeoffPoint] = []
    for size in sizes:
        database = database_factory(size)
        updates = (
            updates_factory(database, size) if updates_factory is not None else None
        )
        engine, point = tradeoff_point(
            query, database, epsilon, mode=mode, updates=updates, delay_limit=delay_limit
        )
        points.append(point)
    ns = [point.database_size for point in points]
    fits: Dict[str, ExponentFit] = {
        "preprocessing": fit_exponent(ns, [p.preprocessing_seconds for p in points]),
    }
    if all(p.delay is not None for p in points):
        fits["delay"] = fit_exponent(ns, [p.delay.maximum for p in points])
    if all(p.update is not None for p in points):
        fits["update"] = fit_exponent(ns, [p.update.mean for p in points])
    engine_for_widths = HierarchicalEngine(query, epsilon=epsilon, mode=mode)
    theory = theoretical_exponents(
        engine_for_widths.static_width, engine_for_widths.dynamic_width, epsilon
    )
    return {"points": points, "fits": fits, "theory": theory}


def compare_engines(
    query,
    database: Database,
    engine_factories: Mapping[str, Callable[[], object]],
    updates_factory: Optional[Callable[[], UpdateStream]] = None,
    delay_limit: Optional[int] = 2000,
) -> List[Dict[str, object]]:
    """Run several engines on the same workload and tabulate the components."""
    rows: List[Dict[str, object]] = []
    for name, factory in engine_factories.items():
        engine = factory()
        engine.load(database)
        row: Dict[str, object] = {
            "engine": name,
            "N": database.size,
            "preprocess_s": engine.preprocessing_seconds or 0.0,
        }
        if updates_factory is not None:
            updates = updates_factory()
            measurement = measure_update_stream(engine, updates)
            row["update_mean_s"] = measurement.mean
            row["update_p95_s"] = measurement.p95
        delay, produced = measure_enumeration_delay(engine, limit=delay_limit)
        row["delay_mean_s"] = delay.mean
        row["delay_max_s"] = delay.maximum
        row["tuples_enumerated"] = produced
        rows.append(row)
    return rows
