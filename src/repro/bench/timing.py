"""Timing utilities for the benchmark harness.

The paper's claims are about three runtime components — preprocessing time,
amortized single-tuple update time, and enumeration delay.  Because Python's
per-operation noise (interpreter dispatch, garbage collection) dwarfs the
constants the paper cares about, each measurement batches many operations and
reports totals, means, and high percentiles; the scaling benchmarks then fit
exponents across database sizes instead of comparing absolute values (see
``DESIGN.md``, "Substitutions").
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.update import Update


@dataclass
class Measurement:
    """Summary statistics of a batch of timed operations (seconds)."""

    label: str
    count: int
    total: float
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, label: str, samples: Sequence[float]) -> "Measurement":
        if not samples:
            return cls(label, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return cls(
            label=label,
            count=len(samples),
            total=sum(samples),
            mean=statistics.fmean(samples),
            median=statistics.median(samples),
            p95=ordered[p95_index],
            maximum=ordered[-1],
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
        }


def time_call(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one call."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def measure_preprocessing(engine_factory: Callable[[], object], database: Database) -> Tuple[object, float]:
    """Build an engine, load the database, and return (engine, seconds)."""
    engine = engine_factory()
    started = time.perf_counter()
    engine.load(database)
    return engine, time.perf_counter() - started


def measure_update_stream(engine, updates: Iterable[Update], label: str = "update") -> Measurement:
    """Apply a stream of updates one at a time, timing each.

    The *mean* of this measurement is the amortized per-update time the paper
    reasons about (rebalancing spikes are folded into the average).
    """
    samples: List[float] = []
    for update in updates:
        started = time.perf_counter()
        engine.apply(update)
        samples.append(time.perf_counter() - started)
    return Measurement.from_samples(label, samples)


def measure_enumeration_delay(
    engine, limit: Optional[int] = None, label: str = "delay"
) -> Tuple[Measurement, int]:
    """Iterate the engine's result, timing every ``next`` call.

    Returns the delay measurement and the number of tuples enumerated.  The
    maximum (and p95) delay is the quantity the paper bounds by
    ``O(N^{1−ε})``.
    """
    samples: List[float] = []
    produced = 0
    iterator = iter(engine.enumerate()) if hasattr(engine, "enumerate") else iter(engine)
    while True:
        started = time.perf_counter()
        try:
            next(iterator)
        except StopIteration:
            samples.append(time.perf_counter() - started)
            break
        samples.append(time.perf_counter() - started)
        produced += 1
        if limit is not None and produced >= limit:
            break
    return Measurement.from_samples(label, samples), produced


@dataclass
class TradeoffPoint:
    """One (ε, N) point of the trade-off space with all measured components."""

    epsilon: float
    database_size: int
    preprocessing_seconds: float
    update: Optional[Measurement] = None
    delay: Optional[Measurement] = None
    view_size: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "epsilon": self.epsilon,
            "N": self.database_size,
            "preprocess_s": self.preprocessing_seconds,
        }
        if self.update is not None:
            row["update_mean_s"] = self.update.mean
            row["update_p95_s"] = self.update.p95
        if self.delay is not None:
            row["delay_mean_s"] = self.delay.mean
            row["delay_max_s"] = self.delay.maximum
        if self.view_size is not None:
            row["view_tuples"] = self.view_size
        row.update(self.extra)
        return row
