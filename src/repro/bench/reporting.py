"""Plain-text reporting for the benchmark harness.

Every benchmark prints the rows/series of the paper figure it reproduces as a
fixed-width table — the output lands both on the console (pytest ``-s`` or
the captured benchmark log) and in ``bench_output.txt``, where it can be
compared side by side with the paper's figures (see ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    """Human-friendly formatting of table cells."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.0005:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render a list of row-dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(format_value(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(
                format_value(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Print and return the formatted table."""
    text = format_table(rows, title)
    print("\n" + text + "\n")
    return text


def format_series(
    label: str, xs: Sequence[object], ys: Sequence[object], x_name: str = "x", y_name: str = "y"
) -> str:
    """Render a single (x, y) series as rows (used for figure curves)."""
    rows = [{x_name: x, y_name: y} for x, y in zip(xs, ys)]
    return format_table(rows, title=label)
