"""Log-log scaling fits.

The reproduction target for the paper's complexity statements is the growth
*exponent*: running the same workload at several database sizes and fitting
``time ≈ c · N^e`` by least squares in log-log space.  The helpers below also
report the R² of the fit so benchmarks can flag noisy measurements, and
provide a tolerant comparison against the exponent predicted by Theorems 2
and 4 (Python constant factors and small-N effects easily shift exponents by
a few tenths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass
class ExponentFit:
    """A fitted power law ``value ≈ constant · N^exponent``."""

    exponent: float
    constant: float
    r_squared: float

    def matches(self, expected: float, tolerance: float = 0.45) -> bool:
        """Whether the fitted exponent is within ``tolerance`` of ``expected``."""
        return abs(self.exponent - expected) <= tolerance

    def as_dict(self) -> Dict[str, float]:
        return {
            "exponent": self.exponent,
            "constant": self.constant,
            "r_squared": self.r_squared,
        }


def fit_exponent(sizes: Sequence[float], values: Sequence[float]) -> ExponentFit:
    """Least-squares fit of ``values ≈ c · sizes^e`` in log-log space.

    Zero or negative values are clamped to a tiny positive constant so that
    constant-time measurements (which hover around timer resolution) produce
    an exponent near zero instead of blowing up.
    """
    if len(sizes) != len(values) or len(sizes) < 2:
        raise ValueError("need at least two (size, value) points to fit an exponent")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.maximum(np.asarray(values, dtype=float), 1e-12))
    slope, intercept = np.polyfit(xs, ys, 1)
    predictions = slope * xs + intercept
    residual = np.sum((ys - predictions) ** 2)
    total = np.sum((ys - np.mean(ys)) ** 2)
    r_squared = 1.0 - (residual / total if total > 0 else 0.0)
    return ExponentFit(
        exponent=float(slope), constant=float(np.exp(intercept)), r_squared=float(r_squared)
    )


def theoretical_exponents(
    static_width: float, dynamic_width: float, epsilon: float
) -> Dict[str, float]:
    """The exponents promised by Theorems 2 and 4 for one ε."""
    return {
        "preprocessing": 1 + (static_width - 1) * epsilon,
        "delay": 1 - epsilon,
        "update": dynamic_width * epsilon,
    }


def relative_factor(value: float, baseline: float) -> float:
    """``value / baseline`` guarded against division by ~zero."""
    return value / max(baseline, 1e-12)
