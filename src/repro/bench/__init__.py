"""Benchmark harness: timing, exponent fitting, reporting, experiment drivers."""

from repro.bench.experiments import (
    compare_engines,
    scaling_experiment,
    sweep_epsilon,
    tradeoff_point,
)
from repro.bench.fitting import ExponentFit, fit_exponent, theoretical_exponents
from repro.bench.reporting import format_series, format_table, print_table
from repro.bench.timing import (
    Measurement,
    TradeoffPoint,
    measure_enumeration_delay,
    measure_preprocessing,
    measure_update_stream,
    time_call,
)

__all__ = [
    "ExponentFit",
    "Measurement",
    "TradeoffPoint",
    "compare_engines",
    "fit_exponent",
    "format_series",
    "format_table",
    "measure_enumeration_delay",
    "measure_preprocessing",
    "measure_update_stream",
    "print_table",
    "scaling_experiment",
    "sweep_epsilon",
    "theoretical_exponents",
    "time_call",
    "tradeoff_point",
]
