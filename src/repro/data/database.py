"""Databases: named collections of relations.

A database is a set of relations (Section 3 of the paper); its size ``N`` is
the sum of the relation sizes.  The class also offers convenience
constructors used by tests, examples, and workload generators.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.data.relation import Relation
from repro.data.schema import ValueTuple
from repro.exceptions import UnknownRelationError


class Database:
    """A named collection of :class:`~repro.data.relation.Relation` objects."""

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations or ():
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        contents: Mapping[str, Tuple[Sequence[str], Iterable[ValueTuple]]],
    ) -> "Database":
        """Build a database from ``{name: (schema, tuples)}``.

        Tuples may be repeated; repetitions accumulate multiplicity, matching
        the bag semantics of the data model.
        """
        database = cls()
        for name, (schema, tuples) in contents.items():
            relation = Relation(name, schema)
            for tup in tuples:
                relation.insert(tuple(tup))
            database.add_relation(relation)
        return database

    def add_relation(self, relation: Relation) -> None:
        """Register a relation (replacing any previous one with the same name)."""
        self._relations[relation.name] = relation

    def create_relation(self, name: str, schema: Sequence[str]) -> Relation:
        """Create, register, and return an empty relation."""
        relation = Relation(name, schema)
        self.add_relation(relation)
        return relation

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """Return the relation called ``name`` or raise :class:`UnknownRelationError`."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise UnknownRelationError(
                f"relation {name!r} is not part of this database "
                f"(available: {sorted(self._relations)})"
            ) from exc

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def names(self) -> Tuple[str, ...]:
        """Return the relation names in registration order."""
        return tuple(self._relations)

    def relations(self) -> Tuple[Relation, ...]:
        """Return all relations in registration order."""
        return tuple(self._relations.values())

    @property
    def size(self) -> int:
        """Database size ``N``: the sum of the relation sizes."""
        return sum(len(relation) for relation in self._relations.values())

    def copy(self) -> "Database":
        """Return a deep copy of all relations (indexes are not copied)."""
        return Database(relation.copy() for relation in self._relations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{relation.name}[{len(relation)}]" for relation in self._relations.values()
        )
        return f"Database({parts})"
