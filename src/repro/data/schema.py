"""Schemas and tuple manipulation helpers.

A *schema* is an ordered tuple of distinct variable names; a *tuple* over a
schema is a plain Python tuple of the same length whose i-th component is the
value of the i-th variable.  The paper (Section 3, "Data Model") treats
schemas and variable sets interchangeably assuming a fixed ordering; this
module is the single place that fixes the ordering conventions used by the
rest of the library.

All functions here are pure and allocation-light: they are called inside the
inner loops of joins, delta propagation, and enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.exceptions import SchemaError

# A schema is an ordered tuple of variable names.
Schema = Tuple[str, ...]
# A value tuple aligned with some schema.
ValueTuple = Tuple[object, ...]


def make_schema(variables: Iterable[str]) -> Schema:
    """Return a schema tuple from an iterable of variable names.

    Raises :class:`SchemaError` if a variable is repeated: schemas are sets
    with a fixed ordering, so duplicates are always a caller bug.
    """
    schema = tuple(variables)
    if len(set(schema)) != len(schema):
        raise SchemaError(f"duplicate variables in schema {schema!r}")
    return schema


def positions(source: Schema, target: Schema) -> Tuple[int, ...]:
    """Return the positions of ``target`` variables inside ``source``.

    The result can be used to project tuples over ``source`` onto ``target``
    with a single tuple comprehension.  Raises :class:`SchemaError` if a
    target variable is missing from the source schema.
    """
    index = {var: i for i, var in enumerate(source)}
    try:
        return tuple(index[var] for var in target)
    except KeyError as exc:
        raise SchemaError(
            f"variable {exc.args[0]!r} not found in schema {source!r}"
        ) from exc


def project(tup: ValueTuple, source: Schema, target: Schema) -> ValueTuple:
    """Project ``tup`` (over ``source``) onto ``target``.

    The values in the result follow the ordering of ``target``, matching the
    paper's ``x[S]`` notation.
    """
    pos = positions(source, target)
    return tuple(tup[i] for i in pos)


class Projector:
    """A reusable projection from one schema onto another.

    Precomputes the index positions once so projecting many tuples (the hot
    path in joins and delta propagation) avoids repeated dictionary lookups.
    """

    __slots__ = ("source", "target", "_positions")

    def __init__(self, source: Schema, target: Schema) -> None:
        self.source = source
        self.target = target
        self._positions = positions(source, target)

    def __call__(self, tup: ValueTuple) -> ValueTuple:
        return tuple(tup[i] for i in self._positions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Projector({self.source!r} -> {self.target!r})"


def tuple_to_dict(tup: ValueTuple, schema: Schema) -> Dict[str, object]:
    """Return a variable → value mapping for ``tup`` over ``schema``."""
    if len(tup) != len(schema):
        raise SchemaError(
            f"tuple {tup!r} has arity {len(tup)}, schema {schema!r} expects {len(schema)}"
        )
    return dict(zip(schema, tup))


def dict_to_tuple(assignment: Mapping[str, object], schema: Schema) -> ValueTuple:
    """Return the tuple over ``schema`` described by ``assignment``.

    Raises :class:`SchemaError` when a schema variable is missing from the
    assignment.
    """
    try:
        return tuple(assignment[var] for var in schema)
    except KeyError as exc:
        raise SchemaError(
            f"assignment is missing variable {exc.args[0]!r} required by {schema!r}"
        ) from exc


def merge_assignments(
    base: Mapping[str, object], extra: Mapping[str, object]
) -> Dict[str, object]:
    """Merge two variable assignments, verifying they agree on shared variables."""
    merged = dict(base)
    for var, value in extra.items():
        if var in merged and merged[var] != value:
            raise SchemaError(
                f"conflicting values for variable {var!r}: {merged[var]!r} vs {value!r}"
            )
        merged[var] = value
    return merged


def union_schema(first: Schema, second: Schema) -> Schema:
    """Return the union of two schemas, keeping the order of first appearance."""
    seen = dict.fromkeys(first)
    for var in second:
        seen.setdefault(var, None)
    return tuple(seen)


def intersect_schema(first: Schema, second: Schema) -> Schema:
    """Return the variables of ``first`` that also appear in ``second``."""
    second_set = set(second)
    return tuple(var for var in first if var in second_set)


def difference_schema(first: Schema, second: Schema) -> Schema:
    """Return the variables of ``first`` that do not appear in ``second``."""
    second_set = set(second)
    return tuple(var for var in first if var not in second_set)


def is_subschema(small: Sequence[str], big: Sequence[str]) -> bool:
    """Return ``True`` when every variable of ``small`` appears in ``big``."""
    return set(small) <= set(big)


def ordered(variables: Iterable[str]) -> Schema:
    """Return a deterministic (sorted) schema for an unordered variable set.

    Used whenever the paper treats a set of variables as a schema (for
    example the ``keys`` of a partition); sorting makes view definitions and
    test expectations reproducible.
    """
    return tuple(sorted(set(variables)))
