"""Columnar array-backed relation storage (the default backend).

The paper's Section 3 computational model only demands O(1)
lookup/insert/delete and constant-delay enumeration — it says nothing about
the constant.  The dict backend pays that constant in full tuple re-hashing
(tuples do not cache their hash) on every touch of the relation and of every
secondary index, plus a per-call key-schema normalisation in
``ensure_index``.  This module keeps the same observational contract while
moving the per-touch work onto flat arrays addressed by dense row ids:

* ``_rids``  — live tuple → row id.  This dict is the single source of truth
  for enumeration order and reproduces the dict backend's semantics exactly
  (insertion-ordered, delete + reinsert moves to the end) no matter how row
  ids are recycled.
* ``_mults`` — ``array('q')``: row id → multiplicity (0 for free rows), so a
  multiplicity bump touches one machine word instead of re-hashing a tuple.
* ``_cols``  — one ``array('q')`` per schema position holding interned value
  ids; ``_value_ids``/``_values`` form the interning pool mapping arbitrary
  hashable values to dense ints (shared across columns, consistent with
  Python equality, e.g. ``1 == 1.0 == True`` interns once).  Plain ints in
  ``(-_ID_MAX, _ID_MAX)`` short-circuit the pool and act as their own id;
  pool-assigned ids live at ``_POOL_BASE`` and above so the ranges never
  collide.
* ``_free``  — free-list of reusable row ids; deleting a tuple parks its row
  and :meth:`ColumnarRelation.compact` (auto-triggered when free rows
  dominate) rebuilds the arrays without disturbing enumeration order or
  existing index objects.
* :class:`ColumnarIndex` — group membership as intrusive doubly-linked lists
  over row ids (``_nxt``/``_prv``), group degree counters as a flat
  ``_sizes`` array, so index maintenance on a row transition never re-hashes
  the full tuple.

numpy is optional: when importable it accelerates a few bulk operations,
otherwise the stdlib ``array`` module carries everything.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.data.relation import Relation, register_backend
from repro.data.schema import (
    Projector,
    Schema,
    ValueTuple,
    positions,
)
from repro.exceptions import RejectedUpdateError

try:  # pragma: no cover - environment-dependent
    import numpy as _np
except Exception:  # pragma: no cover - numpy is optional
    _np = None

_NO_GROUP = -1
_NO_ROW = -1

# Value interning: plain ints in (-_ID_MAX, _ID_MAX) are their own id (ints
# hash to themselves, so a pool lookup would be pure overhead); everything
# else gets a pool id offset by _POOL_BASE so the two ranges never collide.
# Non-int values that compare equal to an in-range int (1.0, True,
# Decimal("1")) are routed to that int's self-id, preserving the dict
# backend's equality collapse.
_ID_MAX = 1 << 40
_POOL_BASE = 1 << 41

# Auto-compaction policy: rebuild the row arrays once the free-list holds
# more than _COMPACT_MIN_FREE rows and outnumbers live rows by
# _COMPACT_RATIO to one.  Compaction is observationally invisible.
_COMPACT_MIN_FREE = 1024
_COMPACT_RATIO = 3


class _GroupView:
    """Re-iterable, sized view of one index group.

    Resolves the group id on every iteration, so the view always reflects
    the current content (like the dict-backend's live dict view) and never
    follows a recycled group id.
    """

    __slots__ = ("_index", "_key")

    def __init__(self, index: "ColumnarIndex", key: ValueTuple) -> None:
        self._index = index
        self._key = key

    def __len__(self) -> int:
        index = self._index
        gid = index._group_ids.get(self._key)
        return index._sizes[gid] if gid is not None else 0

    def __iter__(self) -> Iterator[ValueTuple]:
        index = self._index
        gid = index._group_ids.get(self._key)
        if gid is None:
            return
        rows = index.relation._row_tuples
        nxt = index._nxt
        rid = index._heads[gid]
        while rid != _NO_ROW:
            yield rows[rid]
            rid = nxt[rid]


class _ItemsView:
    """Re-iterable, sized ``(tuple, multiplicity)`` view of a relation."""

    __slots__ = ("_relation",)

    def __init__(self, relation: "ColumnarRelation") -> None:
        self._relation = relation

    def __len__(self) -> int:
        return len(self._relation._rids)

    def __iter__(self) -> Iterator[Tuple[ValueTuple, int]]:
        mults = self._relation._mults
        for tup, rid in self._relation._rids.items():
            yield tup, mults[rid]


class ColumnarIndex:
    """Array-backed secondary index over row ids.

    Duck-types :class:`repro.data.relation.Index`.  Group membership is an
    intrusive doubly-linked list threaded through the ``_nxt``/``_prv``
    arrays (tail-append preserves insertion order within a group, matching
    the dict backend), the per-group degree lives in the flat ``_sizes``
    array, and ``_group_ids`` is an insertion-ordered dict of key tuple →
    group id with delete-on-empty (matching the dict backend's key order:
    a group that empties and reappears moves to the end).
    """

    __slots__ = (
        "relation",
        "schema",
        "key_schema",
        "_projector",
        "_positions",
        "_pos0",
        "_group_ids",
        "_gid_by_idkey",
        "_keys_by_gid",
        "_sizes",
        "_heads",
        "_tails",
        "_free_gids",
        "_group_of",
        "_nxt",
        "_prv",
    )

    def __init__(self, relation: "ColumnarRelation", key_schema: Schema) -> None:
        self.relation = relation
        self.schema = relation.schema
        self.key_schema = key_schema
        self._projector = Projector(relation.schema, key_schema)
        self._positions = positions(relation.schema, key_schema)
        # Single-column fast path: the interned id *is* the group key.
        self._pos0 = self._positions[0] if len(self._positions) == 1 else None
        num_rows = len(relation._row_tuples)
        self._group_of = array("q", [_NO_GROUP]) * num_rows
        self._nxt = array("q", [_NO_ROW]) * num_rows
        self._prv = array("q", [_NO_ROW]) * num_rows
        # Two maps to the same group ids: `_group_ids` is keyed by the value
        # key tuple (the public probe API) and owns the dict-backend key
        # order; `_gid_by_idkey` is keyed by the interned column ids of the
        # key, so row-side maintenance never re-hashes user values.  Value
        # interning collapses by Python equality, so the two keyings agree.
        self._group_ids: Dict[ValueTuple, int] = {}
        self._gid_by_idkey: Dict[object, int] = {}
        self._keys_by_gid: List[Optional[Tuple[ValueTuple, object]]] = []
        self._sizes = array("q")
        self._heads = array("q")
        self._tails = array("q")
        self._free_gids: List[int] = []
        for rid in relation._rids.values():
            self._add_row(rid)

    # ------------------------------------------------------------------
    # row-id maintenance (called by the owning relation)
    # ------------------------------------------------------------------
    def _add_row(self, rid: int) -> None:
        # Row arrays grow lazily: a brand-new rid always equals the current
        # array length (appends allocate ids densely), so a single length
        # check replaces a separate grow call on every insert.
        group_of = self._group_of
        if rid == len(group_of):
            group_of.append(_NO_GROUP)
            self._nxt.append(_NO_ROW)
            self._prv.append(_NO_ROW)
        pos0 = self._pos0
        if pos0 is not None:
            idkey: object = self.relation._cols[pos0][rid]
        else:
            cols = self.relation._cols
            idkey = tuple(cols[p][rid] for p in self._positions)
        gid = self._gid_by_idkey.get(idkey)
        if gid is None:
            self._add_group(idkey, rid)
        else:
            tails = self._tails
            tail = tails[gid]
            self._nxt[tail] = rid
            self._prv[rid] = tail
            tails[gid] = rid
            self._sizes[gid] += 1
            self._nxt[rid] = _NO_ROW
            group_of[rid] = gid

    def _add_group(self, idkey: object, rid: int) -> None:
        """Open a new group containing just ``rid`` (cold path of add)."""
        key = self._projector(self.relation._row_tuples[rid])
        if self._free_gids:
            gid = self._free_gids.pop()
            self._keys_by_gid[gid] = (key, idkey)
            self._sizes[gid] = 1
            self._heads[gid] = rid
            self._tails[gid] = rid
        else:
            gid = len(self._keys_by_gid)
            self._keys_by_gid.append((key, idkey))
            self._sizes.append(1)
            self._heads.append(rid)
            self._tails.append(rid)
        self._group_ids[key] = gid
        self._gid_by_idkey[idkey] = gid
        self._prv[rid] = _NO_ROW
        self._nxt[rid] = _NO_ROW
        self._group_of[rid] = gid

    def _remove_row(self, rid: int) -> None:
        group_of = self._group_of
        gid = group_of[rid]
        if gid == _NO_GROUP:
            return
        group_of[rid] = _NO_GROUP
        nxt_arr = self._nxt
        prv_arr = self._prv
        nxt = nxt_arr[rid]
        prv = prv_arr[rid]
        if prv != _NO_ROW:
            nxt_arr[prv] = nxt
        else:
            self._heads[gid] = nxt
        if nxt != _NO_ROW:
            prv_arr[nxt] = prv
        else:
            self._tails[gid] = prv
        sizes = self._sizes
        size = sizes[gid] - 1
        sizes[gid] = size
        if size == 0:
            self._retire_group(gid)

    def _retire_group(self, gid: int) -> None:
        """Drop an emptied group's keys and recycle its id (cold path)."""
        key, idkey = self._keys_by_gid[gid]
        del self._group_ids[key]
        del self._gid_by_idkey[idkey]
        self._keys_by_gid[gid] = None
        self._free_gids.append(gid)

    def _clear(self) -> None:
        num_rows = len(self.relation._row_tuples)
        self._group_of = array("q", [_NO_GROUP]) * num_rows
        self._nxt = array("q", [_NO_ROW]) * num_rows
        self._prv = array("q", [_NO_ROW]) * num_rows
        self._group_ids.clear()
        self._gid_by_idkey.clear()
        self._keys_by_gid = []
        self._sizes = array("q")
        self._heads = array("q")
        self._tails = array("q")
        self._free_gids = []

    def _probe_gid(self, tup: ValueTuple) -> Optional[int]:
        """Group id of ``tup``'s key group via the interning pool.

        Avoids building (and hashing) the value key tuple: each key value is
        looked up in the interning pool individually, and a value that was
        never interned proves the key group absent.
        """
        value_ids = self.relation._value_ids
        pos0 = self._pos0
        if pos0 is not None:
            value = tup[pos0]
            if type(value) is int and -_ID_MAX < value < _ID_MAX:
                return self._gid_by_idkey.get(value)
            vid = value_ids.get(value)
            if vid is None:
                return None
            return self._gid_by_idkey.get(vid)
        ids = []
        for p in self._positions:
            value = tup[p]
            if type(value) is int and -_ID_MAX < value < _ID_MAX:
                ids.append(value)
                continue
            vid = value_ids.get(value)
            if vid is None:
                return None
            ids.append(vid)
        return self._gid_by_idkey.get(tuple(ids))

    # ------------------------------------------------------------------
    # public Index API
    # ------------------------------------------------------------------
    def add(self, tup: ValueTuple) -> None:
        """Register ``tup`` under its key (idempotent; ``tup`` must be live)."""
        rid = self.relation._rids[tup]
        if self._group_of[rid] == _NO_GROUP:
            self._add_row(rid)

    def remove(self, tup: ValueTuple) -> None:
        """Remove ``tup`` from its key group (no-op if absent)."""
        rid = self.relation._rids.get(tup)
        if rid is not None:
            self._remove_row(rid)

    def key_of(self, tup: ValueTuple) -> ValueTuple:
        """Project a full tuple onto the index key schema."""
        return self._projector(tup)

    def contains_key(self, key: ValueTuple) -> bool:
        """Constant-time test ``key ∈ π_S R``."""
        return key in self._group_ids

    def group(self, key: ValueTuple) -> Iterable[ValueTuple]:
        """Constant-delay enumeration of ``σ_{S=key} R``."""
        return _GroupView(self, key)

    def group_size(self, key: ValueTuple) -> int:
        """Constant-time ``|σ_{S=key} R|`` (number of distinct tuples)."""
        gid = self._group_ids.get(key)
        return self._sizes[gid] if gid is not None else 0

    def keys(self) -> Iterable[ValueTuple]:
        """Enumerate the distinct key values ``π_S R``."""
        return self._group_ids.keys()

    def num_keys(self) -> int:
        """Constant-time ``|π_S R|``."""
        return len(self._group_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarIndex({self.key_schema!r}, keys={len(self._group_ids)})"


class ColumnarRelation(Relation):
    """Array-backed storage backend (see module docstring for the layout)."""

    backend = "columnar"

    def _init_storage(self) -> None:
        self._rids: Dict[ValueTuple, int] = {}
        self._row_tuples: List[Optional[ValueTuple]] = []
        self._mults = array("q")
        self._cols: Tuple[array, ...] = tuple(array("q") for _ in self.schema)
        self._free: List[int] = []
        self._values: List[object] = []
        self._value_ids: Dict[object, int] = {}
        self._indexes: Dict[Schema, ColumnarIndex] = {}
        # Flat tuple mirror of _indexes.values(): apply_delta walks it on
        # every insert/delete, and a tuple walk is cheaper than a dict view.
        self._index_list: Tuple[ColumnarIndex, ...] = ()
        # ensure_index memo keyed by the key schema exactly as passed (a
        # tuple), skipping re-normalisation on the maintenance hot path.
        self._index_memo: Dict[Schema, ColumnarIndex] = {}
        self._arity = len(self.schema)
        # Per-tuple payload channel (ring elements), addressed by row id so
        # a payload read never re-hashes the tuple once the rid is known.
        # Empty unless an aggregate view attaches payloads; compact()
        # remaps the keys alongside every other rid-addressed structure.
        self._payload_rows: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rids)

    def __contains__(self, tup: ValueTuple) -> bool:
        return tup in self._rids

    def __iter__(self) -> Iterator[ValueTuple]:
        return iter(self._rids)

    def multiplicity(self, tup: ValueTuple) -> int:
        rid = self._rids.get(tup)
        return self._mults[rid] if rid is not None else 0

    def items(self) -> Iterable[Tuple[ValueTuple, int]]:
        return _ItemsView(self)

    def tuples(self) -> Iterable[ValueTuple]:
        return self._rids.keys()

    def total_multiplicity(self) -> int:
        # Free rows hold multiplicity 0, so the whole array sums correctly.
        if _np is not None and self._mults:
            return int(_np.frombuffer(self._mults, dtype=_np.int64).sum())
        return sum(self._mults)

    def copy(self, name: Optional[str] = None) -> "Relation":
        clone = type(self)(name or self.name, self.schema)
        clone._rids = dict(self._rids)
        clone._row_tuples = list(self._row_tuples)
        clone._mults = array("q", self._mults)
        clone._cols = tuple(array("q", col) for col in self._cols)
        clone._free = list(self._free)
        clone._values = list(self._values)
        clone._value_ids = dict(self._value_ids)
        if self._payload_rows:
            clone._payload_rows = dict(self._payload_rows)
        return clone

    def clear(self) -> None:
        self._cow_guard()
        if self._rids:
            self._change_ticks += 1
        self._rids.clear()
        self._row_tuples = []
        self._mults = array("q")
        self._cols = tuple(array("q") for _ in self.schema)
        self._free = []
        self._values = []
        self._value_ids = {}
        self._payload_rows = {}
        for index in self._indexes.values():
            index._clear()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_delta(self, tup: ValueTuple, delta: int) -> int:
        # THE maintenance hot path: the row-creation and row-retirement
        # bodies are inlined (no _new_row/_grow helper calls) because the
        # per-call overhead is measurable at scenario replay rates.
        rids = self._rids
        rid = rids.get(tup)
        if rid is None:
            if len(tup) != self._arity:
                self._check_arity(tup)
            if delta == 0:
                return 0
            if delta < 0:
                raise RejectedUpdateError(
                    f"delete of {-delta} copies of {tup!r} rejected: relation "
                    f"{self.name!r} holds only 0"
                )
            cow = self._cow
            if cow is not None and self._cow_epoch != cow.epoch:
                cow.preserve(self)
                self._cow_epoch = cow.epoch
            self._change_ticks += 1
            value_ids = self._value_ids
            free = self._free
            if free:
                rid = free.pop()
                self._row_tuples[rid] = tup
                self._mults[rid] = delta
                for col, value in zip(self._cols, tup):
                    if type(value) is int and -_ID_MAX < value < _ID_MAX:
                        col[rid] = value
                        continue
                    vid = value_ids.get(value)
                    if vid is None:
                        vid = self._intern(value)
                    col[rid] = vid
            else:
                rid = len(self._row_tuples)
                self._row_tuples.append(tup)
                self._mults.append(delta)
                for col, value in zip(self._cols, tup):
                    if type(value) is int and -_ID_MAX < value < _ID_MAX:
                        col.append(value)
                        continue
                    vid = value_ids.get(value)
                    if vid is None:
                        vid = self._intern(value)
                    col.append(vid)
            rids[tup] = rid
            # Inlined ColumnarIndex._add_row (kept in sync with the method):
            # the call overhead is measurable at scenario replay rates.
            for index in self._index_list:
                group_of = index._group_of
                if rid == len(group_of):
                    group_of.append(_NO_GROUP)
                    index._nxt.append(_NO_ROW)
                    index._prv.append(_NO_ROW)
                pos0 = index._pos0
                if pos0 is not None:
                    idkey: object = self._cols[pos0][rid]
                else:
                    idkey = tuple(self._cols[p][rid] for p in index._positions)
                gid = index._gid_by_idkey.get(idkey)
                if gid is None:
                    index._add_group(idkey, rid)
                else:
                    tails = index._tails
                    tail = tails[gid]
                    index._nxt[tail] = rid
                    index._prv[rid] = tail
                    tails[gid] = rid
                    index._sizes[gid] += 1
                    index._nxt[rid] = _NO_ROW
                    group_of[rid] = gid
            return delta
        if delta == 0:
            return self._mults[rid]
        mults = self._mults
        updated = mults[rid] + delta
        if updated < 0:
            raise RejectedUpdateError(
                f"delete of {-delta} copies of {tup!r} rejected: relation "
                f"{self.name!r} holds only {mults[rid]}"
            )
        cow = self._cow
        if cow is not None and self._cow_epoch != cow.epoch:
            cow.preserve(self)
            self._cow_epoch = cow.epoch
        self._change_ticks += 1
        if updated == 0:
            del rids[tup]
            # Inlined ColumnarIndex._remove_row (kept in sync with the
            # method), mirroring the inlined insert path above.
            for index in self._index_list:
                group_of = index._group_of
                gid = group_of[rid]
                if gid == _NO_GROUP:
                    continue
                group_of[rid] = _NO_GROUP
                nxt_arr = index._nxt
                prv_arr = index._prv
                nxt = nxt_arr[rid]
                prv = prv_arr[rid]
                if prv != _NO_ROW:
                    nxt_arr[prv] = nxt
                else:
                    index._heads[gid] = nxt
                if nxt != _NO_ROW:
                    prv_arr[nxt] = prv
                else:
                    index._tails[gid] = prv
                sizes = index._sizes
                size = sizes[gid] - 1
                sizes[gid] = size
                if size == 0:
                    index._retire_group(gid)
            mults[rid] = 0
            self._row_tuples[rid] = None
            if self._payload_rows:
                self._payload_rows.pop(rid, None)
            self._free.append(rid)
            free = len(self._free)
            if free > _COMPACT_MIN_FREE and free > _COMPACT_RATIO * len(rids):
                self.compact()
            return 0
        mults[rid] = updated
        return updated

    def _intern(self, value: object) -> int:
        """Assign ``value`` an id in the pool range (slow path).

        Values that compare equal to an in-range int are cached under that
        int's self-id so id equality keeps matching Python value equality.
        """
        try:
            as_int = int(value)  # type: ignore[call-overload]
            if as_int == value and -_ID_MAX < as_int < _ID_MAX:
                self._value_ids[value] = as_int
                return as_int
        except (TypeError, ValueError, OverflowError):
            pass
        vid = _POOL_BASE + len(self._values)
        self._value_ids[value] = vid
        self._values.append(value)
        return vid

    def compact(self) -> None:
        """Rebuild the row arrays dropping free rows (order-preserving).

        Live rows are renumbered in enumeration order.  Existing index
        objects are remapped in place — group key order, group membership
        order and degree counters are all preserved — so compaction is
        observationally invisible.  The value interning pool is not
        shrunk.
        """
        if not self._free:
            return
        old_mults = self._mults
        old_cols = self._cols
        remap: Dict[int, int] = {}
        new_rows: List[Optional[ValueTuple]] = []
        new_mults = array("q")
        new_cols = tuple(array("q") for _ in self.schema)
        for tup, rid in self._rids.items():
            new_rid = len(new_rows)
            remap[rid] = new_rid
            new_rows.append(tup)
            new_mults.append(old_mults[rid])
            for pos, col in enumerate(old_cols):
                new_cols[pos].append(col[rid])
            self._rids[tup] = new_rid
        self._row_tuples = new_rows
        self._mults = new_mults
        self._cols = new_cols
        self._free = []
        if self._payload_rows:
            self._payload_rows = {
                remap[rid]: payload for rid, payload in self._payload_rows.items()
            }
        num_rows = len(new_rows)
        for index in self._indexes.values():
            old_group_of = index._group_of
            old_nxt = index._nxt
            old_prv = index._prv
            group_of = array("q", [_NO_GROUP]) * num_rows
            nxt = array("q", [_NO_ROW]) * num_rows
            prv = array("q", [_NO_ROW]) * num_rows
            for old_rid, new_rid in remap.items():
                group_of[new_rid] = old_group_of[old_rid]
                link = old_nxt[old_rid]
                nxt[new_rid] = remap[link] if link != _NO_ROW else _NO_ROW
                link = old_prv[old_rid]
                prv[new_rid] = remap[link] if link != _NO_ROW else _NO_ROW
            index._group_of = group_of
            index._nxt = nxt
            index._prv = prv
            heads = index._heads
            tails = index._tails
            for gid in range(len(index._keys_by_gid)):
                if index._keys_by_gid[gid] is None:
                    continue
                heads[gid] = remap[heads[gid]]
                tails[gid] = remap[tails[gid]]

    # ------------------------------------------------------------------
    # per-tuple payloads
    # ------------------------------------------------------------------
    def set_payload(self, tup: ValueTuple, payload: object) -> None:
        rid = self._rids.get(tup)
        if rid is None:
            raise KeyError(
                f"cannot attach a payload to absent tuple {tup!r} in "
                f"relation {self.name!r}"
            )
        self._cow_guard()
        self._change_ticks += 1
        self._payload_rows[rid] = payload

    def payload_of(self, tup: ValueTuple, default: object = None) -> object:
        rid = self._rids.get(tup)
        if rid is None:
            return default
        return self._payload_rows.get(rid, default)

    def payload_items(self) -> Iterable[Tuple[ValueTuple, object]]:
        rows = self._row_tuples
        return (
            (rows[rid], payload) for rid, payload in self._payload_rows.items()
        )

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def ensure_index(self, key_schema: Iterable[str]) -> ColumnarIndex:
        if type(key_schema) is tuple:
            index = self._index_memo.get(key_schema)
            if index is not None:
                return index
        key = self._normalise_key_schema(key_schema)
        index = self._indexes.get(key)
        if index is None:
            index = ColumnarIndex(self, key)
            self._indexes[key] = index
            self._index_list = tuple(self._indexes.values())
        if type(key_schema) is tuple:
            self._index_memo[key_schema] = index
        return index

    # Inlined versions of the base-class probe helpers: one memo hit plus a
    # direct dict/array access, no intermediate method dispatch.
    def slice(self, key_schema: Schema, key: ValueTuple) -> Iterable[ValueTuple]:
        index = self._index_memo.get(key_schema) if type(key_schema) is tuple else None
        if index is None:
            index = self.ensure_index(key_schema)
        return _GroupView(index, key)

    def slice_size(self, key_schema: Schema, key: ValueTuple) -> int:
        index = self._index_memo.get(key_schema) if type(key_schema) is tuple else None
        if index is None:
            index = self.ensure_index(key_schema)
        gid = index._group_ids.get(key)
        return index._sizes[gid] if gid is not None else 0

    def contains_key(self, key_schema: Schema, key: ValueTuple) -> bool:
        index = self._index_memo.get(key_schema) if type(key_schema) is tuple else None
        if index is None:
            index = self.ensure_index(key_schema)
        return key in index._group_ids

    def contains_key_of(self, key_schema: Schema, tup: ValueTuple) -> bool:
        # The index is resolved unconditionally so the ensure side effect
        # (and therefore later key enumeration order) matches the dict
        # backend; only the projection + key hash is skipped for live rows.
        index = self._index_memo.get(key_schema) if type(key_schema) is tuple else None
        if index is None:
            index = self.ensure_index(key_schema)
        if tup in self._rids:
            return True
        pos0 = index._pos0
        if pos0 is not None:
            value = tup[pos0]
            if type(value) is int and -_ID_MAX < value < _ID_MAX:
                return value in index._gid_by_idkey
            vid = self._value_ids.get(value)
            return vid is not None and vid in index._gid_by_idkey
        return index._probe_gid(tup) is not None

    def degree_of(self, key_schema: Schema, tup: ValueTuple) -> int:
        index = self._index_memo.get(key_schema) if type(key_schema) is tuple else None
        if index is None:
            index = self.ensure_index(key_schema)
        rid = self._rids.get(tup)
        if rid is not None:
            return index._sizes[index._group_of[rid]]
        pos0 = index._pos0
        if pos0 is not None:
            value = tup[pos0]
            if type(value) is int and -_ID_MAX < value < _ID_MAX:
                gid = index._gid_by_idkey.get(value)
            else:
                vid = self._value_ids.get(value)
                gid = index._gid_by_idkey.get(vid) if vid is not None else None
        else:
            gid = index._probe_gid(tup)
        return index._sizes[gid] if gid is not None else 0

    def invalidate_indexes(self) -> None:
        self._indexes.clear()
        self._index_list = ()
        self._index_memo.clear()

    def as_dict(self) -> Dict[ValueTuple, int]:
        mults = self._mults
        return {tup: mults[rid] for tup, rid in self._rids.items()}


register_backend("columnar", ColumnarRelation)
