"""Data layer: relations with multiplicities, databases, partitions, updates."""

from repro.data.database import Database
from repro.data.partition import Partition, PartitionRegistry, light_part_name
from repro.data.relation import (
    DictRelation,
    Index,
    Relation,
    get_default_backend,
    set_default_backend,
    storage_backend,
)
from repro.data.storage import ColumnarIndex, ColumnarRelation
from repro.data.schema import (
    Projector,
    Schema,
    ValueTuple,
    difference_schema,
    dict_to_tuple,
    intersect_schema,
    is_subschema,
    make_schema,
    merge_assignments,
    ordered,
    positions,
    project,
    tuple_to_dict,
    union_schema,
)
from repro.data.update import (
    Update,
    UpdateBatch,
    UpdateStream,
    as_batch,
    deletes_for,
    inserts_for,
    iter_batches,
)

__all__ = [
    "ColumnarIndex",
    "ColumnarRelation",
    "Database",
    "DictRelation",
    "Index",
    "get_default_backend",
    "set_default_backend",
    "storage_backend",
    "Partition",
    "PartitionRegistry",
    "Projector",
    "Relation",
    "Schema",
    "Update",
    "UpdateBatch",
    "UpdateStream",
    "as_batch",
    "iter_batches",
    "ValueTuple",
    "deletes_for",
    "dict_to_tuple",
    "difference_schema",
    "inserts_for",
    "intersect_schema",
    "is_subschema",
    "light_part_name",
    "make_schema",
    "merge_assignments",
    "ordered",
    "positions",
    "project",
    "tuple_to_dict",
    "union_schema",
]
