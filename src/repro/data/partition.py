"""Heavy/light partitions of relations (Definition 11 of the paper).

Given a relation ``R`` over schema ``X``, a partition schema ``S ⊂ X`` and a
threshold ``θ``, the pair ``(H, L)`` partitions ``R`` by the degree of the
``S``-values:

* *strict* partition — ``|σ_{S=t} R| ≥ θ`` for heavy keys,
  ``|σ_{S=t} R| < θ`` for light keys;
* *loose* partition (used between rebalancing steps) — heavy keys have
  degree at least ``θ/2`` inside the heavy part and light keys degree below
  ``3θ/2`` inside the light part.

Only the light part ``R^S`` is materialized as its own relation (that is what
the skew-aware view trees join over); the heavy part is ``R`` minus the keys
present in the light part.  The :class:`Partition` class tracks both and
offers the consistency checks exercised by the property-based tests.

This module also hosts the *horizontal* partitioning primitives
(:func:`stable_hash`, :func:`shard_of`) used by
:mod:`repro.sharding` to hash base tuples onto shards by their shard-key
value — kept here so every notion of "splitting a relation" lives in one
place and the hash stays importable from worker processes without pulling
in the engine.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Iterator, Tuple

from repro.data.relation import Relation
from repro.data.schema import Schema, ValueTuple, ordered
from repro.exceptions import InvariantViolationError


def canonical_key_value(value: object) -> object:
    """Collapse values that are equal under Python semantics onto one form.

    Tuple equality in relations follows ``==``, where ``1 == 1.0 == True``;
    shard routing and canonical ordering must agree with that, or a delete
    written as ``(10, 1.0)`` would route to a different shard than the
    stored ``(10, 1)``.  Booleans become ints and integral floats become
    ints; everything else is returned unchanged.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def stable_hash(value: object) -> int:
    """A process-independent hash of one shard-key value.

    Shard routing must agree across runs and across worker processes, so it
    cannot use Python's built-in ``hash`` (string hashing is salted per
    process via ``PYTHONHASHSEED``).  CRC32 over the ``repr`` of the
    canonicalized value (see :func:`canonical_key_value`) is stable, cheap,
    and spreads the small integer domains of the workloads well once mixed
    through a multiplier below.
    """
    return zlib.crc32(repr(canonical_key_value(value)).encode("utf-8"))


def shard_of(value: object, shard_count: int) -> int:
    """Map one shard-key value to a shard index in ``[0, shard_count)``.

    Deterministic across processes and runs (see :func:`stable_hash`); used
    by the sharded engine to route base tuples and updates, and by
    cross-shard invariant checks to verify that every stored tuple lives on
    the shard its key hashes to.
    """
    if shard_count <= 0:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    if shard_count == 1:
        return 0
    # Fibonacci-style multiplicative mixing: CRC32 of small consecutive
    # integers is itself poorly distributed in the low bits.
    mixed = (stable_hash(value) * 0x9E3779B1) & 0xFFFFFFFF
    return mixed % shard_count


def light_part_name(relation_name: str, keys: Iterable[str]) -> str:
    """Canonical name of the light part of ``relation_name`` on ``keys``.

    The paper writes ``R^S``; we use ``R^{A,B}`` so the name is printable and
    unique per partition schema.
    """
    return f"{relation_name}^{{{','.join(ordered(keys))}}}"


class Partition:
    """The heavy/light partition of one base relation on one key schema."""

    def __init__(self, base: Relation, keys: Iterable[str]) -> None:
        self.base = base
        self.keys: Schema = tuple(var for var in base.schema if var in set(keys))
        if not self.keys:
            raise ValueError("a partition needs a non-empty key schema")
        # The light part uses the base relation's storage backend so a
        # database loaded under a pinned backend stays homogeneous.
        self.light = type(base)(light_part_name(base.name, self.keys), base.schema)
        # indexes used for degree queries
        self.base.ensure_index(self.keys)
        self.light.ensure_index(self.keys)

    # ------------------------------------------------------------------
    # degree queries
    # ------------------------------------------------------------------
    def key_of(self, tup: ValueTuple) -> ValueTuple:
        """Project a full tuple of the base relation onto the partition keys."""
        return self.base.ensure_index(self.keys).key_of(tup)

    def base_degree(self, key: ValueTuple) -> int:
        """Number of distinct base tuples with this key (``|σ_{S=key} R|``)."""
        return self.base.slice_size(self.keys, key)

    def light_degree(self, key: ValueTuple) -> int:
        """Number of distinct light-part tuples with this key."""
        return self.light.slice_size(self.keys, key)

    def is_light_key(self, key: ValueTuple) -> bool:
        """True when ``key`` currently resides in the light part."""
        return self.light.contains_key(self.keys, key)

    def is_heavy_key(self, key: ValueTuple) -> bool:
        """True when ``key`` appears in the base relation but not in the light part."""
        return self.base.contains_key(self.keys, key) and not self.is_light_key(key)

    def heavy_keys(self) -> Iterator[ValueTuple]:
        """Enumerate the keys currently classified as heavy."""
        for key in self.base.distinct_keys(self.keys):
            if not self.is_light_key(key):
                yield key

    def light_keys(self) -> Iterator[ValueTuple]:
        """Enumerate the keys currently classified as light."""
        return iter(self.light.distinct_keys(self.keys))

    # ------------------------------------------------------------------
    # (re)partitioning
    # ------------------------------------------------------------------
    def strict_repartition(self, threshold: float) -> None:
        """Rebuild the light part as the strict partition with ``threshold``.

        Used during preprocessing and major rebalancing (Figure 20): a key is
        light exactly when its degree in the base relation is strictly below
        the threshold, and then all of its tuples (with multiplicities) are
        copied into the light part.
        """
        self.light.clear()
        index = self.base.ensure_index(self.keys)
        for key in index.keys():
            if index.group_size(key) < threshold:
                for tup in index.group(key):
                    self.light.apply_delta(tup, self.base.multiplicity(tup))

    def move_key_to_light(self, key: ValueTuple) -> Dict[ValueTuple, int]:
        """Copy all base tuples of ``key`` into the light part.

        Returns the applied deltas ``{tuple: +multiplicity}`` so the caller
        (minor rebalancing) can propagate the same deltas to the view trees.
        """
        deltas: Dict[ValueTuple, int] = {}
        for tup in list(self.base.slice(self.keys, key)):
            mult = self.base.multiplicity(tup)
            self.light.apply_delta(tup, mult)
            deltas[tup] = mult
        return deltas

    def move_key_to_heavy(self, key: ValueTuple) -> Dict[ValueTuple, int]:
        """Remove all light-part tuples of ``key``.

        Returns the applied deltas ``{tuple: -multiplicity}``.
        """
        deltas: Dict[ValueTuple, int] = {}
        for tup in list(self.light.slice(self.keys, key)):
            mult = self.light.multiplicity(tup)
            self.light.apply_delta(tup, -mult)
            deltas[tup] = -mult
        return deltas

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_strict(self, threshold: float) -> None:
        """Assert the strict partition conditions of Definition 11."""
        for key in self.light_keys():
            if self.light_degree(key) >= threshold:
                raise InvariantViolationError(
                    f"light key {key!r} of {self.base.name} has degree "
                    f"{self.light_degree(key)} ≥ threshold {threshold}"
                )
        for key in self.heavy_keys():
            if self.base_degree(key) < threshold:
                raise InvariantViolationError(
                    f"heavy key {key!r} of {self.base.name} has degree "
                    f"{self.base_degree(key)} < threshold {threshold}"
                )
        self.check_consistency()

    def check_loose(self, threshold: float) -> None:
        """Assert the loose partition conditions of Definition 11."""
        for key in self.light_keys():
            if self.light_degree(key) >= 1.5 * threshold:
                raise InvariantViolationError(
                    f"light key {key!r} of {self.base.name} has degree "
                    f"{self.light_degree(key)} ≥ 3θ/2 = {1.5 * threshold}"
                )
        for key in self.heavy_keys():
            if self.base_degree(key) < 0.5 * threshold:
                raise InvariantViolationError(
                    f"heavy key {key!r} of {self.base.name} has degree "
                    f"{self.base_degree(key)} < θ/2 = {0.5 * threshold}"
                )
        self.check_consistency()

    def check_consistency(self) -> None:
        """Assert that the light part is a sub-bag of the base relation.

        The union condition of Definition 11 (``R = H + L``) is kept
        implicitly: heavy tuples are exactly those base tuples whose key is
        not in the light part, so it suffices to verify that every light
        tuple matches its base multiplicity.
        """
        for tup, mult in self.light.items():
            base_mult = self.base.multiplicity(tup)
            if base_mult != mult:
                raise InvariantViolationError(
                    f"light part of {self.base.name} stores {tup!r} with "
                    f"multiplicity {mult}, base has {base_mult}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition({self.base.name!r}, keys={self.keys!r}, "
            f"light={len(self.light)})"
        )


class PartitionRegistry:
    """Shared registry of partitions keyed by (relation name, key schema).

    Several view trees may reference the same light part ``R^S``; routing all
    of them through one registry guarantees they observe a single shared
    object and that each base tuple is partitioned exactly once.
    """

    def __init__(self) -> None:
        self._partitions: Dict[Tuple[str, Schema], Partition] = {}

    def get_or_create(self, base: Relation, keys: Iterable[str]) -> Partition:
        """Return the partition of ``base`` on ``keys``, creating it if needed."""
        key_schema = tuple(var for var in base.schema if var in set(keys))
        registry_key = (base.name, key_schema)
        partition = self._partitions.get(registry_key)
        if partition is None:
            partition = Partition(base, key_schema)
            self._partitions[registry_key] = partition
        return partition

    def partitions(self) -> Tuple[Partition, ...]:
        """All registered partitions, in creation order."""
        return tuple(self._partitions.values())

    def partitions_of(self, relation_name: str) -> Tuple[Partition, ...]:
        """All partitions of one base relation."""
        return tuple(
            partition
            for (name, _keys), partition in self._partitions.items()
            if name == relation_name
        )

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions.values())
