"""Multiplicity-annotated relations with secondary indexes.

This module implements the data-structure contract of Section 3 of the paper
("Computational Model"):

* a relation ``R`` over schema ``X`` stores key-value entries ``(x, R(x))``
  for every tuple ``x`` with non-zero multiplicity, supports constant-time
  lookups, inserts and deletes, constant-delay enumeration of its entries,
  and constant-time reporting of ``|R|``;
* for any sub-schema ``S ⊂ X`` an index can (4) enumerate all tuples in
  ``σ_{S=t} R`` with constant delay, (5) check ``t ∈ π_S R`` in constant
  time, (6) return ``|σ_{S=t} R|`` in constant time, and (7) insert and
  delete index entries in constant time.

Python dictionaries preserve insertion order and give amortized O(1)
lookup/insert/delete, which matches the hash-table-with-chaining construction
described in the paper up to amortization.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.data.schema import (
    Projector,
    Schema,
    ValueTuple,
    is_subschema,
    make_schema,
)
from repro.exceptions import RejectedUpdateError, SchemaError


class Index:
    """A secondary index of a relation on a sub-schema.

    Maps every key tuple ``t`` over the index schema to the group of full
    tuples of the relation that agree with ``t``, stored as an
    insertion-ordered dict which plays the role of the doubly-linked list of
    the paper (constant-delay enumeration, constant-time removal).
    """

    __slots__ = ("schema", "key_schema", "_projector", "_groups")

    def __init__(self, schema: Schema, key_schema: Schema) -> None:
        if not is_subschema(key_schema, schema):
            raise SchemaError(
                f"index schema {key_schema!r} is not a subset of {schema!r}"
            )
        self.schema = schema
        self.key_schema = key_schema
        self._projector = Projector(schema, key_schema)
        # key tuple -> {full tuple: None}
        self._groups: Dict[ValueTuple, Dict[ValueTuple, None]] = {}

    def add(self, tup: ValueTuple) -> None:
        """Register ``tup`` under its key (idempotent)."""
        key = self._projector(tup)
        group = self._groups.get(key)
        if group is None:
            group = {}
            self._groups[key] = group
        group[tup] = None

    def remove(self, tup: ValueTuple) -> None:
        """Remove ``tup`` from its key group (no-op if absent)."""
        key = self._projector(tup)
        group = self._groups.get(key)
        if group is None:
            return
        group.pop(tup, None)
        if not group:
            del self._groups[key]

    def key_of(self, tup: ValueTuple) -> ValueTuple:
        """Project a full tuple onto the index key schema."""
        return self._projector(tup)

    def contains_key(self, key: ValueTuple) -> bool:
        """Constant-time test ``key ∈ π_S R``."""
        return key in self._groups

    def group(self, key: ValueTuple) -> Iterable[ValueTuple]:
        """Constant-delay enumeration of ``σ_{S=key} R``."""
        return self._groups.get(key, {}).keys()

    def group_size(self, key: ValueTuple) -> int:
        """Constant-time ``|σ_{S=key} R|`` (number of distinct tuples)."""
        group = self._groups.get(key)
        return len(group) if group is not None else 0

    def keys(self) -> Iterable[ValueTuple]:
        """Enumerate the distinct key values ``π_S R``."""
        return self._groups.keys()

    def num_keys(self) -> int:
        """Constant-time ``|π_S R|``."""
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Index({self.key_schema!r}, keys={len(self._groups)})"


class Relation:
    """A finite map from tuples to strictly positive multiplicities.

    The relation also owns any number of secondary :class:`Index` objects,
    created on demand via :meth:`ensure_index` and kept consistent by all
    mutating operations.
    """

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        tuples: Optional[Mapping[ValueTuple, int]] = None,
    ) -> None:
        self.name = name
        self.schema: Schema = make_schema(schema)
        self._data: Dict[ValueTuple, int] = {}
        self._indexes: Dict[Schema, Index] = {}
        # Copy-on-write hooks used by repro.snapshot: `_cow` points at the
        # engine's CowTracker once the relation has been captured by a
        # snapshot, `_cow_epoch` is the last tracker epoch this relation was
        # preserved at, `_change_ticks` counts content mutations (so frozen
        # copies can be shared between snapshots while the content is
        # unchanged), and `_cow_cache` holds the most recent frozen copy as
        # ``(change_ticks, Relation)``.
        self._cow = None
        self._cow_epoch = -1
        self._change_ticks = 0
        self._cow_cache: Optional[Tuple[int, "Relation"]] = None
        if tuples:
            for tup, mult in tuples.items():
                self.apply_delta(tup, mult)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of variables in the schema."""
        return len(self.schema)

    def __len__(self) -> int:
        """Number of distinct tuples with non-zero multiplicity (``|R|``)."""
        return len(self._data)

    def __contains__(self, tup: ValueTuple) -> bool:
        return tup in self._data

    def __iter__(self) -> Iterator[ValueTuple]:
        return iter(self._data)

    def multiplicity(self, tup: ValueTuple) -> int:
        """Return ``R(x)``; 0 when the tuple is absent."""
        return self._data.get(tup, 0)

    def items(self) -> Iterable[Tuple[ValueTuple, int]]:
        """Enumerate ``(tuple, multiplicity)`` entries with constant delay."""
        return self._data.items()

    def tuples(self) -> Iterable[ValueTuple]:
        """Enumerate the tuples with non-zero multiplicity."""
        return self._data.keys()

    def total_multiplicity(self) -> int:
        """Sum of all multiplicities (useful for COUNT-style assertions)."""
        return sum(self._data.values())

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a deep copy of the relation content (indexes not copied)."""
        clone = Relation(name or self.name, self.schema)
        clone._data = dict(self._data)
        return clone

    def clear(self) -> None:
        """Remove all tuples and index entries."""
        self._cow_guard()
        if self._data:
            self._change_ticks += 1
        self._data.clear()
        for index in self._indexes.values():
            index._groups.clear()

    def _cow_guard(self) -> None:
        """Preserve the pre-mutation content into every active snapshot.

        Runs before the first mutation after each snapshot capture (the
        tracker bumps its epoch per capture); all later mutations in the
        same epoch skip the tracker entirely, so the steady-state cost is
        one attribute load and an int comparison per mutation.
        """
        cow = self._cow
        if cow is not None and self._cow_epoch != cow.epoch:
            cow.preserve(self)
            self._cow_epoch = cow.epoch

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _check_arity(self, tup: ValueTuple) -> None:
        if len(tup) != len(self.schema):
            raise SchemaError(
                f"tuple {tup!r} has arity {len(tup)} but relation {self.name!r} "
                f"has schema {self.schema!r}"
            )

    def apply_delta(self, tup: ValueTuple, delta: int) -> int:
        """Add ``delta`` to the multiplicity of ``tup`` and return the new value.

        Raises :class:`RejectedUpdateError` if the result would be negative,
        matching the paper's rejection of over-deleting updates.  A resulting
        multiplicity of zero removes the tuple from the relation and from all
        indexes.
        """
        self._check_arity(tup)
        if delta == 0:
            return self._data.get(tup, 0)
        current = self._data.get(tup, 0)
        updated = current + delta
        if updated < 0:
            raise RejectedUpdateError(
                f"delete of {-delta} copies of {tup!r} rejected: relation "
                f"{self.name!r} holds only {current}"
            )
        self._cow_guard()
        self._change_ticks += 1
        if updated == 0:
            del self._data[tup]
            for index in self._indexes.values():
                index.remove(tup)
        else:
            if current == 0:
                self._data[tup] = updated
                for index in self._indexes.values():
                    index.add(tup)
            else:
                self._data[tup] = updated
        return updated

    def set_multiplicity(self, tup: ValueTuple, mult: int) -> None:
        """Set the multiplicity of ``tup`` to exactly ``mult`` (≥ 0)."""
        current = self.multiplicity(tup)
        self.apply_delta(tup, mult - current)

    def insert(self, tup: ValueTuple, mult: int = 1) -> None:
        """Insert ``mult`` copies of ``tup`` (``mult`` must be positive)."""
        if mult <= 0:
            raise ValueError("insert requires a positive multiplicity")
        self.apply_delta(tup, mult)

    def delete(self, tup: ValueTuple, mult: int = 1) -> None:
        """Delete ``mult`` copies of ``tup`` (``mult`` must be positive)."""
        if mult <= 0:
            raise ValueError("delete requires a positive multiplicity")
        self.apply_delta(tup, -mult)

    def merge(self, other: "Relation", sign: int = 1) -> None:
        """Apply every entry of ``other`` (scaled by ``sign``) to this relation."""
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot merge {other.schema!r} into {self.schema!r}"
            )
        for tup, mult in other.items():
            self.apply_delta(tup, sign * mult)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def ensure_index(self, key_schema: Iterable[str]) -> Index:
        """Return (building if necessary) the index on ``key_schema``.

        The key schema is normalised to the ordering induced by the relation
        schema so logically equal requests share one index.
        """
        key = tuple(var for var in self.schema if var in set(key_schema))
        if set(key) != set(key_schema):
            raise SchemaError(
                f"index schema {tuple(key_schema)!r} is not a subset of {self.schema!r}"
            )
        index = self._indexes.get(key)
        if index is None:
            index = Index(self.schema, key)
            for tup in self._data:
                index.add(tup)
            self._indexes[key] = index
        return index

    def has_index(self, key_schema: Iterable[str]) -> bool:
        key = tuple(var for var in self.schema if var in set(key_schema))
        return key in self._indexes

    def invalidate_indexes(self) -> None:
        """Drop every secondary index; the next use rebuilds from content.

        Index key groups are insertion-ordered, so a long-lived index can
        iterate its keys in an order that differs from one built fresh off
        the current content (a group that partially empties keeps its
        original position; a fresh build orders keys by first occurrence).
        Retuning (:meth:`repro.ivm.rebalance.MaintenanceDriver.retune`)
        drops the indexes so the strict repartition that follows seeds the
        light parts — and through them every view — in exactly the order a
        newly loaded engine would produce.
        """
        self._indexes.clear()

    # ------------------------------------------------------------------
    # algebra helpers used throughout the engine
    # ------------------------------------------------------------------
    def slice(self, key_schema: Schema, key: ValueTuple) -> Iterable[ValueTuple]:
        """Enumerate ``σ_{S=key} R`` via the index on ``S``."""
        return self.ensure_index(key_schema).group(key)

    def slice_size(self, key_schema: Schema, key: ValueTuple) -> int:
        """Return ``|σ_{S=key} R|`` via the index on ``S``."""
        return self.ensure_index(key_schema).group_size(key)

    def distinct_keys(self, key_schema: Schema) -> Iterable[ValueTuple]:
        """Enumerate ``π_S R`` via the index on ``S``."""
        return self.ensure_index(key_schema).keys()

    def contains_key(self, key_schema: Schema, key: ValueTuple) -> bool:
        """Constant-time test ``key ∈ π_S R``."""
        return self.ensure_index(key_schema).contains_key(key)

    def project(self, target_schema: Schema, name: Optional[str] = None) -> "Relation":
        """Return a new relation ``π_target R`` summing multiplicities."""
        projector = Projector(self.schema, target_schema)
        result = Relation(name or f"π({self.name})", target_schema)
        for tup, mult in self._data.items():
            result.apply_delta(projector(tup), mult)
        return result

    def as_dict(self) -> Dict[ValueTuple, int]:
        """Return a copy of the underlying tuple → multiplicity mapping."""
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, schema={self.schema!r}, size={len(self)})"
