"""Multiplicity-annotated relations with secondary indexes.

This module implements the data-structure contract of Section 3 of the paper
("Computational Model"):

* a relation ``R`` over schema ``X`` stores key-value entries ``(x, R(x))``
  for every tuple ``x`` with non-zero multiplicity, supports constant-time
  lookups, inserts and deletes, constant-delay enumeration of its entries,
  and constant-time reporting of ``|R|``;
* for any sub-schema ``S ⊂ X`` an index can (4) enumerate all tuples in
  ``σ_{S=t} R`` with constant delay, (5) check ``t ∈ π_S R`` in constant
  time, (6) return ``|σ_{S=t} R|`` in constant time, and (7) insert and
  delete index entries in constant time.

Two interchangeable storage backends satisfy the contract:

* ``dict`` — the original layout: a dict of tuples to multiplicities plus
  dict-of-dict indexes.  Python dictionaries preserve insertion order and
  give amortized O(1) lookup/insert/delete, which matches the
  hash-table-with-chaining construction described in the paper up to
  amortization.
* ``columnar`` (:mod:`repro.data.storage`, the default) — an array-backed
  layout with interned values, flat multiplicity/degree arrays addressed by
  row id, and intrusive linked lists for index groups.  Observationally
  identical to ``dict`` (including enumeration order) but with a much
  smaller constant on the maintenance hot path.

The backend is selected with ``REPRO_STORAGE=dict|columnar`` (environment),
:func:`set_default_backend`, or the :func:`storage_backend` context manager.
Constructing ``Relation(...)`` dispatches to the selected backend class;
instantiating :class:`DictRelation` (or the columnar class) directly pins a
backend regardless of the default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Type

from repro.data.schema import (
    Projector,
    Schema,
    ValueTuple,
    is_subschema,
    make_schema,
)
from repro.exceptions import RejectedUpdateError, SchemaError


class Index:
    """A secondary index of a relation on a sub-schema (dict backend).

    Maps every key tuple ``t`` over the index schema to the group of full
    tuples of the relation that agree with ``t``, stored as an
    insertion-ordered dict which plays the role of the doubly-linked list of
    the paper (constant-delay enumeration, constant-time removal).
    """

    __slots__ = ("schema", "key_schema", "_projector", "_groups")

    def __init__(self, schema: Schema, key_schema: Schema) -> None:
        if not is_subschema(key_schema, schema):
            raise SchemaError(
                f"index schema {key_schema!r} is not a subset of {schema!r}"
            )
        self.schema = schema
        self.key_schema = key_schema
        self._projector = Projector(schema, key_schema)
        # key tuple -> {full tuple: None}
        self._groups: Dict[ValueTuple, Dict[ValueTuple, None]] = {}

    def add(self, tup: ValueTuple) -> None:
        """Register ``tup`` under its key (idempotent)."""
        key = self._projector(tup)
        group = self._groups.get(key)
        if group is None:
            group = {}
            self._groups[key] = group
        group[tup] = None

    def remove(self, tup: ValueTuple) -> None:
        """Remove ``tup`` from its key group (no-op if absent)."""
        key = self._projector(tup)
        group = self._groups.get(key)
        if group is None:
            return
        group.pop(tup, None)
        if not group:
            del self._groups[key]

    def key_of(self, tup: ValueTuple) -> ValueTuple:
        """Project a full tuple onto the index key schema."""
        return self._projector(tup)

    def contains_key(self, key: ValueTuple) -> bool:
        """Constant-time test ``key ∈ π_S R``."""
        return key in self._groups

    def group(self, key: ValueTuple) -> Iterable[ValueTuple]:
        """Constant-delay enumeration of ``σ_{S=key} R``."""
        return self._groups.get(key, {}).keys()

    def group_size(self, key: ValueTuple) -> int:
        """Constant-time ``|σ_{S=key} R|`` (number of distinct tuples)."""
        group = self._groups.get(key)
        return len(group) if group is not None else 0

    def keys(self) -> Iterable[ValueTuple]:
        """Enumerate the distinct key values ``π_S R``."""
        return self._groups.keys()

    def num_keys(self) -> int:
        """Constant-time ``|π_S R|``."""
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Index({self.key_schema!r}, keys={len(self._groups)})"


# ----------------------------------------------------------------------
# storage backend selection
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Type["Relation"]] = {}
_BACKEND_NAMES = ("dict", "columnar")
_DEFAULT_BACKEND: Optional[str] = None  # resolved lazily from REPRO_STORAGE


def _validate_backend(name: str) -> str:
    if name not in _BACKEND_NAMES:
        raise ValueError(
            f"unknown storage backend {name!r}; expected one of {_BACKEND_NAMES}"
        )
    return name


def get_default_backend() -> str:
    """Return the current default backend name (``dict`` or ``columnar``).

    Resolved from the ``REPRO_STORAGE`` environment variable on first use;
    later changes go through :func:`set_default_backend`.
    """
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        name = os.environ.get("REPRO_STORAGE", "").strip().lower() or "columnar"
        _DEFAULT_BACKEND = _validate_backend(name)
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Select the backend used by ``Relation(...)``; return the previous one.

    Also mirrors the choice into ``os.environ['REPRO_STORAGE']`` so worker
    processes spawned by the sharded executors inherit the same backend.
    """
    global _DEFAULT_BACKEND
    previous = get_default_backend()
    _DEFAULT_BACKEND = _validate_backend(name)
    os.environ["REPRO_STORAGE"] = _DEFAULT_BACKEND
    return previous


@contextmanager
def storage_backend(name: str):
    """Context manager pinning the default storage backend within a block."""
    previous = set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def register_backend(name: str, cls: Type["Relation"]) -> None:
    _BACKENDS[_validate_backend(name)] = cls


def backend_class(name: str) -> Type["Relation"]:
    """Return the Relation subclass implementing backend ``name``."""
    _validate_backend(name)
    cls = _BACKENDS.get(name)
    if cls is None:
        # The columnar backend lives in repro.data.storage, which imports
        # this module; load it lazily to register its class.
        from repro.data import storage  # noqa: F401

        cls = _BACKENDS[name]
    return cls


class Relation:
    """A finite map from tuples to strictly positive multiplicities.

    The relation also owns any number of secondary index objects, created on
    demand via :meth:`ensure_index` and kept consistent by all mutating
    operations.  ``Relation(...)`` is a factory: it instantiates the storage
    backend selected by :func:`get_default_backend`.
    """

    backend = "abstract"

    def __new__(cls, *args, **kwargs):
        if cls is Relation:
            cls = backend_class(get_default_backend())
        return object.__new__(cls)

    def __init__(
        self,
        name: str,
        schema: Iterable[str],
        tuples: Optional[Mapping[ValueTuple, int]] = None,
    ) -> None:
        self.name = name
        self.schema: Schema = make_schema(schema)
        # Copy-on-write hooks used by repro.snapshot: `_cow` points at the
        # engine's CowTracker once the relation has been captured by a
        # snapshot, `_cow_epoch` is the last tracker epoch this relation was
        # preserved at, `_change_ticks` counts content mutations (so frozen
        # copies can be shared between snapshots while the content is
        # unchanged), and `_cow_cache` holds the most recent frozen copy as
        # ``(change_ticks, Relation)``.
        self._cow = None
        self._cow_epoch = -1
        self._change_ticks = 0
        self._cow_cache: Optional[Tuple[int, "Relation"]] = None
        self._init_storage()
        if tuples:
            for tup, mult in tuples.items():
                self.apply_delta(tup, mult)

    def _init_storage(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of variables in the schema."""
        return len(self.schema)

    def __len__(self) -> int:
        """Number of distinct tuples with non-zero multiplicity (``|R|``)."""
        raise NotImplementedError

    def __contains__(self, tup: ValueTuple) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[ValueTuple]:
        raise NotImplementedError

    def multiplicity(self, tup: ValueTuple) -> int:
        """Return ``R(x)``; 0 when the tuple is absent."""
        raise NotImplementedError

    def items(self) -> Iterable[Tuple[ValueTuple, int]]:
        """Enumerate ``(tuple, multiplicity)`` entries with constant delay."""
        raise NotImplementedError

    def tuples(self) -> Iterable[ValueTuple]:
        """Enumerate the tuples with non-zero multiplicity."""
        raise NotImplementedError

    def total_multiplicity(self) -> int:
        """Sum of all multiplicities (useful for COUNT-style assertions)."""
        return sum(mult for _, mult in self.items())

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a deep copy of the relation content (indexes not copied).

        The copy uses the same storage backend as the source, regardless of
        the current default.
        """
        raise NotImplementedError

    def clear(self) -> None:
        """Remove all tuples and index entries."""
        raise NotImplementedError

    def _cow_guard(self) -> None:
        """Preserve the pre-mutation content into every active snapshot.

        Runs before the first mutation after each snapshot capture (the
        tracker bumps its epoch per capture); all later mutations in the
        same epoch skip the tracker entirely, so the steady-state cost is
        one attribute load and an int comparison per mutation.
        """
        cow = self._cow
        if cow is not None and self._cow_epoch != cow.epoch:
            cow.preserve(self)
            self._cow_epoch = cow.epoch

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _check_arity(self, tup: ValueTuple) -> None:
        if len(tup) != len(self.schema):
            raise SchemaError(
                f"tuple {tup!r} has arity {len(tup)} but relation {self.name!r} "
                f"has schema {self.schema!r}"
            )

    def apply_delta(self, tup: ValueTuple, delta: int) -> int:
        """Add ``delta`` to the multiplicity of ``tup`` and return the new value.

        Raises :class:`RejectedUpdateError` if the result would be negative,
        matching the paper's rejection of over-deleting updates.  A resulting
        multiplicity of zero removes the tuple from the relation and from all
        indexes.
        """
        raise NotImplementedError

    def set_multiplicity(self, tup: ValueTuple, mult: int) -> None:
        """Set the multiplicity of ``tup`` to exactly ``mult`` (≥ 0).

        A negative ``mult`` is a caller error, reported as :class:`ValueError`
        like the sign checks of :meth:`insert` and :meth:`delete` — not as a
        :class:`RejectedUpdateError`, which is reserved for over-deletes of
        well-formed updates.
        """
        if mult < 0:
            raise ValueError("set_multiplicity requires a non-negative multiplicity")
        current = self.multiplicity(tup)
        self.apply_delta(tup, mult - current)

    def insert(self, tup: ValueTuple, mult: int = 1) -> None:
        """Insert ``mult`` copies of ``tup`` (``mult`` must be positive)."""
        if mult <= 0:
            raise ValueError("insert requires a positive multiplicity")
        self.apply_delta(tup, mult)

    def delete(self, tup: ValueTuple, mult: int = 1) -> None:
        """Delete ``mult`` copies of ``tup`` (``mult`` must be positive)."""
        if mult <= 0:
            raise ValueError("delete requires a positive multiplicity")
        self.apply_delta(tup, -mult)

    def merge(self, other: "Relation", sign: int = 1) -> None:
        """Apply every entry of ``other`` (scaled by ``sign``) to this relation.

        The merge is atomic: every entry is validated before any is applied,
        so an over-deleting merge raises :class:`RejectedUpdateError` and
        leaves this relation untouched instead of half-merged.
        """
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot merge {other.schema!r} into {self.schema!r}"
            )
        if sign < 0:
            # Entries of `other` are strictly positive, so only a negative
            # sign can over-delete; validate every entry up front.
            for tup, mult in other.items():
                if self.multiplicity(tup) + sign * mult < 0:
                    raise RejectedUpdateError(
                        f"merge of {other.name!r} into {self.name!r} rejected: "
                        f"deleting {-sign * mult} copies of {tup!r} exceeds "
                        f"the {self.multiplicity(tup)} present"
                    )
        for tup, mult in other.items():
            self.apply_delta(tup, sign * mult)

    # ------------------------------------------------------------------
    # per-tuple payloads (ring-annotated aggregate views)
    # ------------------------------------------------------------------
    def set_payload(self, tup: ValueTuple, payload: object) -> None:
        """Attach an opaque payload to a *live* tuple.

        Payloads are the ring-element channel of aggregate views
        (:mod:`repro.rings`): the relation's multiplicity stays the
        counting-ring support while the payload carries the group's ring
        element.  The payload follows the tuple's lifecycle — it is dropped
        when the tuple's multiplicity reaches zero, copied by :meth:`copy`,
        and cleared by :meth:`clear`.  Attaching to an absent tuple raises
        ``KeyError`` (a payload without support is unrepresentable by
        design).  Relations that never call this pay nothing on the
        maintenance hot path.
        """
        raise NotImplementedError

    def payload_of(self, tup: ValueTuple, default: object = None) -> object:
        """Return the payload attached to ``tup`` (``default`` when none)."""
        raise NotImplementedError

    def payload_items(self) -> Iterable[Tuple[ValueTuple, object]]:
        """Enumerate ``(tuple, payload)`` for tuples carrying a payload."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def _normalise_key_schema(self, key_schema: Iterable[str]) -> Schema:
        key = tuple(var for var in self.schema if var in set(key_schema))
        if set(key) != set(key_schema):
            raise SchemaError(
                f"index schema {tuple(key_schema)!r} is not a subset of {self.schema!r}"
            )
        return key

    def ensure_index(self, key_schema: Iterable[str]):
        """Return (building if necessary) the index on ``key_schema``.

        The key schema is normalised to the ordering induced by the relation
        schema so logically equal requests share one index.  Key tuples
        passed to :meth:`slice`/:meth:`slice_size`/:meth:`contains_key` (or
        to the index directly) must therefore be built in relation-schema
        order, not in the caller's variable order.
        """
        raise NotImplementedError

    def has_index(self, key_schema: Iterable[str]) -> bool:
        key = tuple(var for var in self.schema if var in set(key_schema))
        return key in self._indexes

    def invalidate_indexes(self) -> None:
        """Drop every secondary index; the next use rebuilds from content.

        Index key groups are insertion-ordered, so a long-lived index can
        iterate its keys in an order that differs from one built fresh off
        the current content (a group that partially empties keeps its
        original position; a fresh build orders keys by first occurrence).
        Retuning (:meth:`repro.ivm.rebalance.MaintenanceDriver.retune`)
        drops the indexes so the strict repartition that follows seeds the
        light parts — and through them every view — in exactly the order a
        newly loaded engine would produce.
        """
        self._indexes.clear()

    # ------------------------------------------------------------------
    # algebra helpers used throughout the engine
    # ------------------------------------------------------------------
    def slice(self, key_schema: Schema, key: ValueTuple) -> Iterable[ValueTuple]:
        """Enumerate ``σ_{S=key} R`` via the index on ``S``."""
        return self.ensure_index(key_schema).group(key)

    def slice_size(self, key_schema: Schema, key: ValueTuple) -> int:
        """Return ``|σ_{S=key} R|`` via the index on ``S``."""
        return self.ensure_index(key_schema).group_size(key)

    def distinct_keys(self, key_schema: Schema) -> Iterable[ValueTuple]:
        """Enumerate ``π_S R`` via the index on ``S``."""
        return self.ensure_index(key_schema).keys()

    def contains_key(self, key_schema: Schema, key: ValueTuple) -> bool:
        """Constant-time test ``key ∈ π_S R``."""
        return self.ensure_index(key_schema).contains_key(key)

    def contains_key_of(self, key_schema: Schema, tup: ValueTuple) -> bool:
        """Tuple-addressed form of :meth:`contains_key`.

        Tests whether ``tup``'s projection onto ``key_schema`` appears in
        ``π_S R`` without the caller having to build the key tuple (the
        maintenance hot path asks this about the update tuple itself, which
        lets the columnar backend answer from the row table for live
        tuples).
        """
        index = self.ensure_index(key_schema)
        return index.contains_key(index.key_of(tup))

    def degree_of(self, key_schema: Schema, tup: ValueTuple) -> int:
        """Tuple-addressed form of :meth:`slice_size`.

        Returns ``|σ_{S=key_of(tup)} R|`` — the degree of the key group that
        ``tup`` belongs (or would belong) to.
        """
        index = self.ensure_index(key_schema)
        return index.group_size(index.key_of(tup))

    def project(self, target_schema: Schema, name: Optional[str] = None) -> "Relation":
        """Return a new relation ``π_target R`` summing multiplicities."""
        projector = Projector(self.schema, target_schema)
        result = type(self)(name or f"π({self.name})", target_schema)
        for tup, mult in self.items():
            result.apply_delta(projector(tup), mult)
        return result

    def as_dict(self) -> Dict[ValueTuple, int]:
        """Return a copy of the underlying tuple → multiplicity mapping."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation({self.name!r}, schema={self.schema!r}, size={len(self)}, "
            f"backend={self.backend!r})"
        )


class DictRelation(Relation):
    """The original dict-of-tuples storage backend.

    Kept unchanged as the reference implementation: the conformance runner
    diffs it against the columnar backend, and ``REPRO_STORAGE=dict``
    selects it engine-wide.
    """

    backend = "dict"

    def _init_storage(self) -> None:
        self._data: Dict[ValueTuple, int] = {}
        self._indexes: Dict[Schema, Index] = {}
        # Per-tuple payload channel (ring elements); empty unless an
        # aggregate view attaches payloads, so the hot path's only cost is
        # one falsy check on removals.
        self._payloads: Dict[ValueTuple, object] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, tup: ValueTuple) -> bool:
        return tup in self._data

    def __iter__(self) -> Iterator[ValueTuple]:
        return iter(self._data)

    def multiplicity(self, tup: ValueTuple) -> int:
        return self._data.get(tup, 0)

    def items(self) -> Iterable[Tuple[ValueTuple, int]]:
        return self._data.items()

    def tuples(self) -> Iterable[ValueTuple]:
        return self._data.keys()

    def total_multiplicity(self) -> int:
        return sum(self._data.values())

    def copy(self, name: Optional[str] = None) -> "Relation":
        clone = type(self)(name or self.name, self.schema)
        clone._data = dict(self._data)
        if self._payloads:
            clone._payloads = dict(self._payloads)
        return clone

    def clear(self) -> None:
        self._cow_guard()
        if self._data:
            self._change_ticks += 1
        self._data.clear()
        self._payloads.clear()
        for index in self._indexes.values():
            index._groups.clear()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_delta(self, tup: ValueTuple, delta: int) -> int:
        self._check_arity(tup)
        if delta == 0:
            return self._data.get(tup, 0)
        current = self._data.get(tup, 0)
        updated = current + delta
        if updated < 0:
            raise RejectedUpdateError(
                f"delete of {-delta} copies of {tup!r} rejected: relation "
                f"{self.name!r} holds only {current}"
            )
        self._cow_guard()
        self._change_ticks += 1
        if updated == 0:
            del self._data[tup]
            if self._payloads:
                self._payloads.pop(tup, None)
            for index in self._indexes.values():
                index.remove(tup)
        else:
            if current == 0:
                self._data[tup] = updated
                for index in self._indexes.values():
                    index.add(tup)
            else:
                self._data[tup] = updated
        return updated

    # ------------------------------------------------------------------
    # per-tuple payloads
    # ------------------------------------------------------------------
    def set_payload(self, tup: ValueTuple, payload: object) -> None:
        if tup not in self._data:
            raise KeyError(
                f"cannot attach a payload to absent tuple {tup!r} in "
                f"relation {self.name!r}"
            )
        self._cow_guard()
        self._change_ticks += 1
        self._payloads[tup] = payload

    def payload_of(self, tup: ValueTuple, default: object = None) -> object:
        return self._payloads.get(tup, default)

    def payload_items(self) -> Iterable[Tuple[ValueTuple, object]]:
        return self._payloads.items()

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def ensure_index(self, key_schema: Iterable[str]) -> Index:
        key = self._normalise_key_schema(key_schema)
        index = self._indexes.get(key)
        if index is None:
            index = Index(self.schema, key)
            for tup in self._data:
                index.add(tup)
            self._indexes[key] = index
        return index

    def as_dict(self) -> Dict[ValueTuple, int]:
        return dict(self._data)


register_backend("dict", DictRelation)
