"""Single-tuple updates and update streams.

The paper models an update as ``δR = {x → m}``: an insert when ``m > 0`` and
a delete when ``m < 0`` (Section 3).  :class:`Update` captures exactly that,
and :class:`UpdateStream` is a thin convenience wrapper used by the dynamic
engine, the baselines, and the benchmark harness so all of them consume the
same update sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.data.database import Database
from repro.data.schema import ValueTuple


@dataclass(frozen=True)
class Update:
    """A single-tuple update ``δR = {tuple → multiplicity}``."""

    relation: str
    tuple: ValueTuple
    multiplicity: int = 1

    @property
    def is_insert(self) -> bool:
        """True when the update adds copies of the tuple."""
        return self.multiplicity > 0

    @property
    def is_delete(self) -> bool:
        """True when the update removes copies of the tuple."""
        return self.multiplicity < 0

    def inverted(self) -> "Update":
        """Return the update that undoes this one."""
        return Update(self.relation, self.tuple, -self.multiplicity)

    def __post_init__(self) -> None:
        if self.multiplicity == 0:
            raise ValueError("an update must have a non-zero multiplicity")
        object.__setattr__(self, "tuple", tuple(self.tuple))


class UpdateStream:
    """An ordered sequence of single-tuple updates."""

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._updates: List[Update] = list(updates)

    def append(self, update: Update) -> None:
        self._updates.append(update)

    def extend(self, updates: Iterable[Update]) -> None:
        self._updates.extend(updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, item: int) -> Update:
        return self._updates[item]

    def inserts(self) -> "UpdateStream":
        """Return the sub-stream of inserts, in order."""
        return UpdateStream(u for u in self._updates if u.is_insert)

    def deletes(self) -> "UpdateStream":
        """Return the sub-stream of deletes, in order."""
        return UpdateStream(u for u in self._updates if u.is_delete)

    def apply_to(self, database: Database) -> None:
        """Apply every update directly to the base relations of ``database``.

        This bypasses any incremental maintenance and is used by tests and
        baselines to obtain the ground-truth database state.
        """
        for update in self._updates:
            database.relation(update.relation).apply_delta(
                update.tuple, update.multiplicity
            )

    @classmethod
    def from_database(cls, database: Database) -> "UpdateStream":
        """Return the stream that inserts every tuple of ``database``.

        The paper observes that preprocessing is equivalent to inserting ``N``
        tuples into an empty database; this helper makes that experiment (and
        the corresponding tests) a one-liner.
        """
        updates: List[Update] = []
        for relation in database:
            for tup, mult in relation.items():
                updates.append(Update(relation.name, tup, mult))
        return cls(updates)

    @classmethod
    def interleave(cls, streams: Sequence["UpdateStream"]) -> "UpdateStream":
        """Round-robin interleave several streams into one."""
        iterators = [iter(stream) for stream in streams]
        merged: List[Update] = []
        active = list(iterators)
        while active:
            still_active = []
            for iterator in active:
                try:
                    merged.append(next(iterator))
                except StopIteration:
                    continue
                still_active.append(iterator)
            active = still_active
        return cls(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateStream(len={len(self._updates)})"


def inserts_for(relation: str, tuples: Iterable[ValueTuple]) -> UpdateStream:
    """Build a stream of unit inserts into ``relation``."""
    return UpdateStream(Update(relation, tuple(tup), 1) for tup in tuples)


def deletes_for(relation: str, tuples: Iterable[ValueTuple]) -> UpdateStream:
    """Build a stream of unit deletes from ``relation``."""
    return UpdateStream(Update(relation, tuple(tup), -1) for tup in tuples)
