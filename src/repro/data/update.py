"""Single-tuple updates, update streams, and consolidated update batches.

The paper models an update as ``δR = {x → m}``: an insert when ``m > 0`` and
a delete when ``m < 0`` (Section 3).  :class:`Update` captures exactly that,
and :class:`UpdateStream` is a thin convenience wrapper used by the dynamic
engine, the baselines, and the benchmark harness so all of them consume the
same update sequences.

:class:`UpdateBatch` generalises the model to ``δR = {x₁ → m₁, …, xₖ → mₖ}``
over several relations at once: it stores the *net effect* of a sequence of
single-tuple updates (same-tuple deltas are merged, zero-multiplicity no-ops
are dropped) grouped by relation.  Because delta propagation is linear in the
delta for fixed sibling contents, replaying a batch relation group by
relation group yields the same final query result as replaying the source
updates one by one — the batched maintenance path
(:class:`repro.ivm.maintenance.BatchUpdateProcessor`) exploits this to
amortize per-update overhead.  ``UpdateStream.batches(size)`` chunks a
recorded stream into consecutive batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
    Union,
)

from repro.data.database import Database
from repro.data.schema import ValueTuple
from repro.exceptions import RejectedUpdateError


@dataclass(frozen=True)
class Update:
    """A single-tuple update ``δR = {tuple → multiplicity}``."""

    relation: str
    tuple: ValueTuple
    multiplicity: int = 1

    @property
    def is_insert(self) -> bool:
        """True when the update adds copies of the tuple."""
        return self.multiplicity > 0

    @property
    def is_delete(self) -> bool:
        """True when the update removes copies of the tuple."""
        return self.multiplicity < 0

    def inverted(self) -> "Update":
        """Return the update that undoes this one."""
        return Update(self.relation, self.tuple, -self.multiplicity)

    def __post_init__(self) -> None:
        if self.multiplicity == 0:
            raise ValueError("an update must have a non-zero multiplicity")
        object.__setattr__(self, "tuple", tuple(self.tuple))


class UpdateBatch:
    """The net effect of a sequence of updates, grouped by relation.

    A batch stores ``{relation → {tuple → net multiplicity}}``: adding an
    update merges its multiplicity into the entry of its tuple, and entries
    whose net multiplicity reaches zero are dropped (an insert followed by a
    matching delete inside one batch is a no-op end to end).
    ``source_count`` remembers how many single-tuple updates were folded in,
    so throughput accounting stays in terms of the original stream.

    Typical use::

        batch = UpdateBatch([Update("R", (1, 2), 1), Update("R", (1, 2), -1)])
        batch.is_empty()        # True — the pair cancelled
        batch.source_count      # 2

    Batches are consumed by :meth:`repro.core.api.HierarchicalEngine.apply_batch`
    and by the ``apply_batch`` method of every baseline engine.
    """

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._deltas: Dict[str, Dict[ValueTuple, int]] = {}
        self._source_count = 0
        self.extend(updates)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, update: Update) -> None:
        """Fold one single-tuple update into the batch."""
        self.add_delta(update.relation, update.tuple, update.multiplicity)
        self._source_count += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Fold a sequence of single-tuple updates into the batch."""
        for update in updates:
            self.add(update)

    def add_delta(self, relation: str, tup: ValueTuple, multiplicity: int) -> None:
        """Merge a raw delta entry without counting it as a source update."""
        if multiplicity == 0:
            return
        group = self._deltas.setdefault(relation, {})
        tup = tuple(tup)
        merged = group.get(tup, 0) + multiplicity
        if merged == 0:
            del group[tup]
            if not group:
                del self._deltas[relation]
        else:
            group[tup] = merged

    @classmethod
    def from_updates(cls, updates: Iterable[Update]) -> "UpdateBatch":
        """Consolidate any iterable of updates (alias of the constructor)."""
        return cls(updates)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def source_count(self) -> int:
        """Number of single-tuple updates folded into this batch."""
        return self._source_count

    def is_empty(self) -> bool:
        """True when every source update cancelled out."""
        return not self._deltas

    def __len__(self) -> int:
        """Number of net ``(relation, tuple)`` delta entries."""
        return sum(len(group) for group in self._deltas.values())

    def relations(self) -> Tuple[str, ...]:
        """Relations with at least one net delta, in first-touched order."""
        return tuple(self._deltas)

    def delta_for(self, relation: str) -> Mapping[ValueTuple, int]:
        """The net delta ``{tuple → multiplicity}`` of one relation."""
        return self._deltas.get(relation, {})

    def deltas_by_relation(self) -> Dict[str, Dict[ValueTuple, int]]:
        """A copy of all per-relation net deltas."""
        return {name: dict(group) for name, group in self._deltas.items()}

    def grouped_by_key(
        self, relation: str, key_of: Callable[[ValueTuple], ValueTuple]
    ) -> Dict[ValueTuple, Dict[ValueTuple, int]]:
        """Group one relation's net delta by a partition key projection.

        ``key_of`` is typically :meth:`repro.data.partition.Partition.key_of`;
        the maintenance layer uses the grouping to make one routing and one
        rebalancing decision per partition key instead of one per tuple.
        """
        grouped: Dict[ValueTuple, Dict[ValueTuple, int]] = {}
        for tup, mult in self.delta_for(relation).items():
            grouped.setdefault(key_of(tup), {})[tup] = mult
        return grouped

    def updates(self) -> Iterator[Update]:
        """The net updates, grouped by relation (one per surviving entry)."""
        for relation, group in self._deltas.items():
            for tup, mult in group.items():
                yield Update(relation, tup, mult)

    def split_by(
        self, classify: Callable[[str, ValueTuple], int]
    ) -> Dict[int, "UpdateBatch"]:
        """Partition the net deltas into sub-batches by a routing function.

        ``classify(relation, tuple)`` names the bucket (e.g. the shard index)
        of one net entry; entries are folded into one sub-batch per bucket
        via :meth:`add_delta`.  Buckets that receive no entry are absent from
        the result — in particular, a batch whose net effect is empty splits
        into an *empty mapping*, never into empty sub-batches, so routing a
        fully-cancelled batch dispatches no work anywhere (the boundary
        contract shared with :meth:`UpdateStream.batches`, which *does* yield
        fully-cancelled batches so source-update accounting stays exact).

        Each sub-batch's ``source_count`` equals its number of net entries:
        the original per-update attribution cannot be reconstructed from net
        deltas, so callers that need exact per-bucket source counts should
        route the raw updates *before* consolidating (the sharded engine does
        this when handed a stream rather than a batch).
        """
        buckets: Dict[int, "UpdateBatch"] = {}
        for relation, group in self._deltas.items():
            for tup, mult in group.items():
                bucket = buckets.setdefault(classify(relation, tup), UpdateBatch())
                bucket.add(Update(relation, tup, mult))
        return buckets

    def validate_against(self, database: Database) -> None:
        """Raise :class:`RejectedUpdateError` if any net delete over-deletes.

        Checks every entry against the *current* multiplicities without
        mutating anything, so callers can reject a batch before touching any
        state (all-or-nothing ingestion).
        """
        for relation, group in self._deltas.items():
            target = database.relation(relation)
            for tup, mult in group.items():
                if mult < 0 and target.multiplicity(tup) + mult < 0:
                    raise RejectedUpdateError(
                        f"batch rejected: net delete of {-mult} copies of "
                        f"{tup!r} from {relation!r} exceeds the stored "
                        f"multiplicity {target.multiplicity(tup)}; "
                        "no part of the batch was applied"
                    )

    def apply_to(self, database: Database) -> None:
        """Apply every net delta directly to the base relations.

        Like :meth:`UpdateStream.apply_to` this bypasses incremental
        maintenance; baselines use it to refresh ground-truth state in one
        pass.  The batch is validated first, so an over-deleting entry
        raises before *any* delta is applied and the database is left
        untouched.
        """
        self.validate_against(database)
        for relation, group in self._deltas.items():
            target = database.relation(relation)
            for tup, mult in group.items():
                target.apply_delta(tup, mult)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UpdateBatch(relations={len(self._deltas)}, entries={len(self)}, "
            f"source_count={self._source_count})"
        )


def as_batch(updates: Union["UpdateBatch", Iterable[Update]]) -> "UpdateBatch":
    """Coerce an :class:`UpdateBatch`, stream, or iterable into a batch."""
    if isinstance(updates, UpdateBatch):
        return updates
    return UpdateBatch(updates)


def validate_batch_size(size: int) -> int:
    """Reject non-integer or non-positive batch sizes with a uniform error.

    Shared by :func:`iter_batches` and the sharded engine's stream chunking
    so both ingestion paths accept exactly the same sizes.  Returns the
    validated size.
    """
    if not isinstance(size, int) or isinstance(size, bool):
        raise ValueError(f"batch size must be an integer, got {size!r}")
    if size <= 0:
        raise ValueError(f"batch size must be positive, got {size}")
    return size


def iter_batches(
    updates: Iterable[Update], size: int
) -> Iterator["UpdateBatch"]:
    """Chunk any iterable of updates into consecutive consolidated batches.

    Raises :class:`ValueError` *immediately* for ``size <= 0`` — the check
    happens at call time, not lazily at the first ``next()``, so a bad batch
    size can never be mistaken for an empty stream.
    """
    return _iter_batches(updates, validate_batch_size(size))


def _iter_batches(updates: Iterable[Update], size: int) -> Iterator["UpdateBatch"]:
    batch = UpdateBatch()
    for update in updates:
        batch.add(update)
        if batch.source_count >= size:
            yield batch
            batch = UpdateBatch()
    if batch.source_count:
        yield batch


class UpdateStream:
    """An ordered sequence of single-tuple updates."""

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._updates: List[Update] = list(updates)

    def append(self, update: Update) -> None:
        self._updates.append(update)

    def extend(self, updates: Iterable[Update]) -> None:
        self._updates.extend(updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, item: int) -> Update:
        return self._updates[item]

    def inserts(self) -> "UpdateStream":
        """Return the sub-stream of inserts, in order."""
        return UpdateStream(u for u in self._updates if u.is_insert)

    def deletes(self) -> "UpdateStream":
        """Return the sub-stream of deletes, in order."""
        return UpdateStream(u for u in self._updates if u.is_delete)

    def batches(self, size: int) -> Iterator[UpdateBatch]:
        """Chunk the stream into consecutive consolidated batches.

        Each batch folds ``size`` source updates (the last one possibly
        fewer) into their net per-relation deltas; ``size=len(stream)``
        consolidates the whole stream into one batch.
        """
        return iter_batches(self._updates, size)

    def consolidated(self) -> UpdateBatch:
        """Consolidate the entire stream into a single batch."""
        return UpdateBatch(self._updates)

    def split_by(
        self, classify: Callable[[Update], int]
    ) -> Dict[int, "UpdateStream"]:
        """Partition the stream into sub-streams by a routing function.

        Order is preserved within each sub-stream.  Unlike
        :meth:`UpdateBatch.split_by` this routes *source* updates, so
        per-bucket ``source_count`` accounting stays exact after the
        sub-streams are consolidated — including updates that later cancel
        inside a bucket's batch.
        """
        buckets: Dict[int, "UpdateStream"] = {}
        for update in self._updates:
            buckets.setdefault(classify(update), UpdateStream()).append(update)
        return buckets

    def apply_to(self, database: Database) -> None:
        """Apply every update directly to the base relations of ``database``.

        This bypasses any incremental maintenance and is used by tests and
        baselines to obtain the ground-truth database state.
        """
        for update in self._updates:
            database.relation(update.relation).apply_delta(
                update.tuple, update.multiplicity
            )

    @classmethod
    def from_database(cls, database: Database) -> "UpdateStream":
        """Return the stream that inserts every tuple of ``database``.

        The paper observes that preprocessing is equivalent to inserting ``N``
        tuples into an empty database; this helper makes that experiment (and
        the corresponding tests) a one-liner.
        """
        updates: List[Update] = []
        for relation in database:
            for tup, mult in relation.items():
                updates.append(Update(relation.name, tup, mult))
        return cls(updates)

    @classmethod
    def interleave(cls, streams: Sequence["UpdateStream"]) -> "UpdateStream":
        """Round-robin interleave several streams into one."""
        iterators = [iter(stream) for stream in streams]
        merged: List[Update] = []
        active = list(iterators)
        while active:
            still_active = []
            for iterator in active:
                try:
                    merged.append(next(iterator))
                except StopIteration:
                    continue
                still_active.append(iterator)
            active = still_active
        return cls(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateStream(len={len(self._updates)})"


def inserts_for(relation: str, tuples: Iterable[ValueTuple]) -> UpdateStream:
    """Build a stream of unit inserts into ``relation``."""
    return UpdateStream(Update(relation, tuple(tup), 1) for tup in tuples)


def deletes_for(relation: str, tuples: Iterable[ValueTuple]) -> UpdateStream:
    """Build a stream of unit deletes from ``relation``."""
    return UpdateStream(Update(relation, tuple(tup), -1) for tup in tuples)
