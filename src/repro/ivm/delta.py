"""Delta propagation through a view tree (``Apply``, Figure 17).

A single-tuple (or small batched) change to a leaf relation is propagated
along the path from that leaf to the root: at each view on the path the
change is joined with the sibling subtrees' current contents and projected
onto the view schema (the classical delta rule), then applied to the view.

Leaves are *not* modified here — base relations, light parts, and indicator
relations are shared across trees and are updated exactly once by the
maintenance layer before propagation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.data.schema import Schema, ValueTuple
from repro.engine.join import BoundRelation, delta_join
from repro.views.view import LeafNode, ViewNode, ViewTreeNode

#: A delta maps tuples to *counting-ring* elements (signed multiplicities).
#: The propagation below relies only on the abelian-group laws the counting
#: ring shares with every ring in :mod:`repro.rings` — associativity,
#: commutativity, identity (zero entries are dropped), and inverses
#: (deletions are negated insertions).  Ring-valued aggregate payloads ride
#: these same deltas: the maintenance layer hands each commit's result-level
#: Delta to the registered aggregate listeners, which lift it into their
#: ring via :meth:`repro.rings.Ring.lift`.
Delta = Dict[ValueTuple, int]


def merge_delta(accumulator: Delta, delta: Mapping[ValueTuple, int]) -> Delta:
    """Fold ``delta`` into ``accumulator`` in place (group addition).

    Entries that cancel to the identity are removed rather than stored as
    zeros, keeping "absent" and "present at zero" indistinguishable — the
    invariant every consumer of a drained delta relies on.
    """
    for tup, mult in delta.items():
        updated = accumulator.get(tup, 0) + mult
        if updated:
            accumulator[tup] = updated
        else:
            accumulator.pop(tup, None)
    return accumulator


def propagate_delta(
    tree: ViewTreeNode,
    source_name: str,
    delta_schema: Schema,
    delta: Mapping[ValueTuple, int],
) -> Optional[Tuple[Schema, Delta]]:
    """Propagate a change of the relation ``source_name`` through ``tree``.

    Returns ``(schema, delta)`` describing the induced change at the root of
    the tree, or ``None`` when the tree does not reference ``source_name``
    (in which case nothing is modified).  An empty delta short-circuits.
    """
    pruned = {tup: mult for tup, mult in delta.items() if mult != 0}
    if not pruned:
        return None
    return _propagate(tree, source_name, tuple(delta_schema), pruned)


def _propagate(
    node: ViewTreeNode,
    source_name: str,
    delta_schema: Schema,
    delta: Delta,
) -> Optional[Tuple[Schema, Delta]]:
    if isinstance(node, LeafNode):
        if node.source_name != source_name:
            return None
        # The delta arrives in the stored (positional) order of the relation,
        # which coincides with the leaf's variable order.
        return node.schema, dict(delta)
    assert isinstance(node, ViewNode)
    child_result = None
    changed_child = None
    for child in node.children:
        result = _propagate(child, source_name, delta_schema, delta)
        if result is not None:
            child_result = result
            changed_child = child
            break
    if child_result is None:
        return None
    child_schema, child_delta = child_result
    if not child_delta:
        return node.schema, {}
    siblings = [
        BoundRelation(sibling.schema, sibling.relation())
        for sibling in node.children
        if sibling is not changed_child
    ]
    view_delta = delta_join(child_schema, child_delta, siblings, node.schema)
    relation = node.relation()
    for tup, mult in view_delta.items():
        if mult != 0:
            relation.apply_delta(tup, mult)
    return node.schema, view_delta


def delta_from_update(tuple_value: ValueTuple, multiplicity: int) -> Delta:
    """Build the single-entry delta ``{x → m}`` of the paper's update model."""
    return {tuple(tuple_value): multiplicity}
