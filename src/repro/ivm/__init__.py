"""Incremental view maintenance: delta propagation, updates, rebalancing."""

from repro.ivm.delta import delta_from_update, propagate_delta
from repro.ivm.maintenance import UpdateProcessor
from repro.ivm.rebalance import MaintenanceDriver, RebalanceStats

__all__ = [
    "MaintenanceDriver",
    "RebalanceStats",
    "UpdateProcessor",
    "delta_from_update",
    "propagate_delta",
]
