"""Incremental view maintenance: delta propagation, updates, rebalancing.

Two ingestion paths share the same propagation primitives: single-tuple
processing (:class:`UpdateProcessor`, the paper's Figure 19) and batched
processing (:class:`BatchUpdateProcessor`), which applies a whole
consolidated :class:`~repro.data.update.UpdateBatch` per view-tree traversal
and defers rebalancing to one check per batch.
"""

from repro.ivm.delta import delta_from_update, propagate_delta
from repro.ivm.maintenance import BatchUpdateProcessor, UpdateProcessor
from repro.ivm.rebalance import MaintenanceDriver, RebalanceStats

__all__ = [
    "BatchUpdateProcessor",
    "MaintenanceDriver",
    "RebalanceStats",
    "UpdateProcessor",
    "delta_from_update",
    "propagate_delta",
]
