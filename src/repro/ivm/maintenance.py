"""Update processing (``UpdateTrees``, Figure 19): single-tuple and batched.

For an update ``δR = {x → m}`` the maintenance layer:

1. captures, for every partition of ``R``, whether the partition key of ``x``
   existed in ``R`` before the update (new keys start light — this keeps the
   domain-partition invariant of Definition 11);
2. applies ``δR`` to the shared base relation exactly once;
3. propagates ``δR`` through every skew-aware strategy tree and every
   indicator ``All`` tree that references ``R``;
4. routes the update into the light parts ``R^S`` whose key is (or becomes)
   light, propagating the induced change through the trees that reference the
   light part (skew trees and indicator ``L`` trees);
5. refreshes the heavy-indicator supports ``∃H`` of the affected triples and
   propagates any support change through the skew trees.

:class:`BatchUpdateProcessor` runs the same five steps once per *batch
relation group* instead of once per tuple: a whole
:class:`~repro.data.update.UpdateBatch` is applied to each base relation in
one pass and the grouped delta is propagated through every affected view
tree in a single traversal.  This is sound because delta propagation is
linear in the delta for fixed sibling contents and every relation occurs at
most once per tree (footnote 2), so the grouped propagation equals the sum
of the per-tuple propagations; processing relations one group at a time
keeps the sibling snapshots consistent exactly like the sequential path
(the higher-order term ``δR ⋈ δS`` never appears).

Rebalancing (threshold maintenance) is handled separately by
:mod:`repro.ivm.rebalance`; the batched path defers it to one check per
batch (:meth:`repro.ivm.rebalance.MaintenanceDriver.on_batch`).

**Result-delta capture** (the push-based serving hook): when enabled via
:meth:`UpdateProcessor.set_delta_capture`, every ingestion event also
computes the induced change of the *query result* — the classical
first-order delta ``π_head(δR ⋈ S ⋈ T ⋈ …)`` of the net per-relation
group against the other atoms' base relations, evaluated at the same
group-sequential point the grouped propagation uses — and accumulates it
into a drainable net delta.  Subscribers of
:class:`repro.net.EngineTCPServer` receive exactly these per-commit deltas
instead of re-enumerating; rebalances and retunes never contribute (they
reorganize views without changing the result).  Disabled, the hook is a
single ``None`` check per group.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.data.database import Database
from repro.data.partition import Partition
from repro.data.schema import Schema, ValueTuple
from repro.data.update import Update, UpdateBatch
from repro.exceptions import (
    RejectedUpdateError,
    UnknownRelationError,
    UnsupportedQueryError,
)
from repro.engine.join import BoundRelation, delta_join
from repro.ivm.delta import Delta, merge_delta, propagate_delta
from repro.query.atom import Atom
from repro.views.indicators import IndicatorTriple
from repro.views.skew import SkewAwarePlan
from repro.views.view import ViewTreeNode


class UpdateProcessor:
    """Applies single-tuple updates to a materialized skew-aware plan."""

    def __init__(self, plan: SkewAwarePlan, database: Database) -> None:
        self.plan = plan
        self.database = database
        self.query = plan.query
        self._atoms_by_relation: Dict[str, Atom] = {}
        for atom in self.query.atoms:
            if atom.relation in self._atoms_by_relation:
                raise UnsupportedQueryError(
                    "queries with repeating relation symbols are not supported by "
                    "the dynamic engine (paper footnote 2)"
                )
            self._atoms_by_relation[atom.relation] = atom
        # Result-delta capture (push-based serving): ``None`` when disabled;
        # a net ``{result_tuple: multiplicity}`` accumulator otherwise,
        # shared with the batch processor and drained per commit by the
        # serving layer.
        self._result_capture: Optional[Delta] = None
        # Result-delta listeners (ring-annotated aggregate views): each is
        # called with every group-level first-order result delta as it is
        # computed.  The delta is computed once and fanned out to the
        # capture accumulator and every listener, so maintained aggregates
        # and push subscriptions share one delta evaluation per group.
        self._delta_listeners: List[Callable[[Delta], None]] = []

    # ------------------------------------------------------------------
    # result-delta capture
    # ------------------------------------------------------------------
    def set_delta_capture(self, enabled: bool) -> None:
        """Start (or stop) accumulating per-commit result-level deltas."""
        if enabled:
            if self._result_capture is None:
                self._result_capture = {}
        else:
            self._result_capture = None

    @property
    def capturing_deltas(self) -> bool:
        return self._result_capture is not None

    def add_delta_listener(self, listener: Callable[[Delta], None]) -> None:
        """Register a per-group result-delta consumer (aggregate views).

        Listeners receive the same first-order deltas the capture
        accumulator folds — called at the group-sequential point inside the
        commit, so summing everything a listener sees over one commit gives
        the commit's exact net result delta.  Listeners survive retunes and
        rebalances (the processor persists; those reorganizations never
        produce result deltas) but not :meth:`~repro.core.api.HierarchicalEngine.load`,
        which rebuilds the processor — the engine re-registers its
        aggregates there.
        """
        self._delta_listeners.append(listener)

    def remove_delta_listener(self, listener: Callable[[Delta], None]) -> None:
        """Unregister a listener added by :meth:`add_delta_listener`."""
        try:
            self._delta_listeners.remove(listener)
        except ValueError:
            pass

    def drain_result_delta(self) -> Delta:
        """Return and clear the net result delta accumulated since last drain."""
        if self._result_capture is None:
            return {}
        drained, self._result_capture = self._result_capture, {}
        return drained

    def _capture_group(self, relation_name: str, group: Mapping[ValueTuple, int]) -> None:
        """Fold one relation group's first-order result delta into the capture.

        ``π_head(δR ⋈ S ⋈ T ⋈ …)`` against the *base* relations of every
        other atom — which, at the group-sequential point where this runs,
        already include every previously processed group of the same commit
        and none of the later ones, so summing the per-group deltas yields
        the commit's exact net result delta (the delta rule is linear in
        ``δR`` for fixed sibling contents).
        """
        capture = self._result_capture
        listeners = self._delta_listeners
        if capture is None and not listeners:
            return
        atom = self._atoms_by_relation[relation_name]
        siblings = [
            BoundRelation(other.variables, self.database.relation(other.relation))
            for other in self.query.atoms
            if other is not atom
        ]
        delta = delta_join(
            atom.variables, group, siblings, tuple(self.query.head)
        )
        if capture is not None:
            merge_delta(capture, delta)
        for listener in listeners:
            listener(delta)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _atom_for(self, relation_name: str) -> Atom:
        try:
            return self._atoms_by_relation[relation_name]
        except KeyError as exc:
            raise UnknownRelationError(
                f"relation {relation_name!r} does not occur in query {self.query}"
            ) from exc

    def _triple_key(
        self, triple: IndicatorTriple, relation_name: str, tup: ValueTuple
    ) -> ValueTuple:
        """Project an update tuple onto the triple's key variables."""
        atom = self._atom_for(relation_name)
        return tuple(tup[atom.variables.index(v)] for v in triple.keys)

    def _propagate_to_trees(
        self, source_name: str, schema: Schema, delta: Delta
    ) -> None:
        """Propagate a leaf change through every skew-aware strategy tree."""
        for tree in self.plan.trees_referencing(source_name):
            propagate_delta(tree, source_name, schema, delta)

    def _propagate_to_light_indicator_trees(
        self, source_name: str, schema: Schema, delta: Delta
    ) -> None:
        for triple in self.plan.indicator_triples:
            if source_name in triple.light_tree.source_names():
                propagate_delta(triple.light_tree, source_name, schema, delta)

    def _refresh_indicator(
        self, triple: IndicatorTriple, key: ValueTuple
    ) -> None:
        """Refresh ``∃H`` at ``key`` and propagate any support change."""
        change = triple.refresh_key(key)
        if change == 0:
            return
        self._propagate_to_trees(
            triple.exists_heavy.name, triple.keys, {key: change}
        )

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def apply_update(self, update: Update) -> None:
        """Process one single-tuple update (Figure 19, without rebalancing)."""
        relation = self.database.relation(update.relation)
        self._atom_for(update.relation)
        delta: Delta = {tuple(update.tuple): update.multiplicity}
        schema: Schema = relation.schema

        partitions = self.plan.partitions.partitions_of(relation.name)
        # Tuple-addressed probes: whether the update tuple's partition key
        # existed in the base before the update.  No key tuple is built —
        # the columnar backend answers from the row table for live tuples.
        pre_state: Dict[int, bool] = {}
        for partition in partitions:
            pre_state[id(partition)] = partition.base.contains_key_of(
                partition.keys, update.tuple
            )

        # (2) the shared base relation absorbs the update exactly once
        relation.apply_delta(update.tuple, update.multiplicity)
        self._capture_group(relation.name, delta)

        # (3) strategy trees and indicator All trees referencing the base relation
        self._propagate_to_trees(relation.name, schema, delta)
        affected_triples = self.plan.triples_referencing(update.relation)
        for triple in affected_triples:
            propagate_delta(triple.all_tree, relation.name, schema, delta)

        # (4) light-part routing
        updated_light: Set[int] = set()
        for partition in partitions:
            was_in_base = pre_state[id(partition)]
            route_to_light = (not was_in_base) or partition.light.contains_key_of(
                partition.keys, update.tuple
            )
            if not route_to_light:
                continue
            if id(partition.light) in updated_light:
                continue
            updated_light.add(id(partition.light))
            partition.light.apply_delta(update.tuple, update.multiplicity)
            light_name = partition.light.name
            self._propagate_to_trees(light_name, schema, delta)
            self._propagate_to_light_indicator_trees(light_name, schema, delta)

        # (5) heavy-indicator support refresh
        for triple in affected_triples:
            key = self._triple_key(triple, update.relation, update.tuple)
            self._refresh_indicator(triple, key)

    # ------------------------------------------------------------------
    # batched light-part moves (used by minor rebalancing)
    # ------------------------------------------------------------------
    def move_partition_key(
        self,
        partition: Partition,
        key: ValueTuple,
        to_light: bool,
        witness_tuple: ValueTuple,
        relation_name: str,
    ) -> None:
        """Move all tuples of one partition key into or out of the light part.

        The deltas applied to the light part are propagated through the skew
        trees and the indicator ``L`` trees, after which the heavy-indicator
        supports of the triples fed by this light part are refreshed at the
        corresponding key (Figure 21).
        """
        if to_light:
            deltas = partition.move_key_to_light(key)
        else:
            deltas = partition.move_key_to_heavy(key)
        if not deltas:
            return
        schema = partition.base.schema
        light_name = partition.light.name
        self._propagate_to_trees(light_name, schema, deltas)
        self._propagate_to_light_indicator_trees(light_name, schema, deltas)
        for triple in self.plan.indicator_triples:
            if light_name in triple.light_tree.source_names():
                triple_key = self._triple_key(triple, relation_name, witness_tuple)
                self._refresh_indicator(triple, triple_key)


class BatchUpdateProcessor:
    """Applies consolidated update batches to a materialized skew-aware plan.

    The processor mirrors the five steps of :class:`UpdateProcessor` but
    amortizes all per-update overhead across the batch:

    * which trees and indicator triples reference each relation is computed
      once and cached (the plan's tree structure is fixed for its lifetime,
      only view *contents* change);
    * the base relation, every strategy tree, and every indicator ``All``
      tree absorb one grouped delta per batch instead of one per tuple;
    * light-part routing and heavy-indicator refreshes are decided once per
      distinct partition key touched by the batch.

    Batches are processed one relation group at a time so each grouped
    propagation joins against sibling contents that already include every
    previously processed group — the same telescoping the sequential path
    performs, hence the same final view contents for the query result.
    """

    def __init__(
        self,
        plan: SkewAwarePlan,
        database: Database,
        processor: Optional[UpdateProcessor] = None,
    ) -> None:
        self.plan = plan
        self.database = database
        self.processor = processor or UpdateProcessor(plan, database)
        self._trees_by_source: Dict[str, Tuple[ViewTreeNode, ...]] = {}
        self._light_indicator_trees: Dict[str, Tuple[ViewTreeNode, ...]] = {}
        self._triples_by_relation: Dict[str, Tuple[IndicatorTriple, ...]] = {}

    # ------------------------------------------------------------------
    # cached plan lookups
    # ------------------------------------------------------------------
    def _trees_for(self, source_name: str) -> Tuple[ViewTreeNode, ...]:
        trees = self._trees_by_source.get(source_name)
        if trees is None:
            trees = self.plan.trees_referencing(source_name)
            self._trees_by_source[source_name] = trees
        return trees

    def _light_indicator_trees_for(
        self, source_name: str
    ) -> Tuple[ViewTreeNode, ...]:
        trees = self._light_indicator_trees.get(source_name)
        if trees is None:
            trees = tuple(
                triple.light_tree
                for triple in self.plan.indicator_triples
                if source_name in triple.light_tree.source_names()
            )
            self._light_indicator_trees[source_name] = trees
        return trees

    def _triples_for(self, relation_name: str) -> Tuple[IndicatorTriple, ...]:
        triples = self._triples_by_relation.get(relation_name)
        if triples is None:
            triples = self.plan.triples_referencing(relation_name)
            self._triples_by_relation[relation_name] = triples
        return triples

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch, validated: bool = False) -> None:
        """Process one consolidated batch (Figure 19 steps, grouped).

        The batch is validated up front — every relation must occur in the
        query and every net delete must be covered by the current base
        multiplicity — so a rejected batch raises *before* any relation,
        view, or indicator is touched (all-or-nothing ingestion, unlike the
        sequential path where a mid-stream rejection keeps the updates that
        preceded it).  ``validated=True`` skips that pass for callers that
        already ran it — the sharded engine pre-validates every involved
        shard in a separate round to make *cross-shard* ingestion atomic,
        and must not pay for the same walk twice.
        """
        if not validated:
            self._validate_batch(batch)
        for relation_name in batch.relations():
            self._apply_group(batch, relation_name)

    def _validate_batch(self, batch: UpdateBatch) -> None:
        for relation_name in batch.relations():
            self.processor._atom_for(relation_name)
            relation = self.database.relation(relation_name)
            for tup, mult in batch.delta_for(relation_name).items():
                if mult < 0 and relation.multiplicity(tup) + mult < 0:
                    raise RejectedUpdateError(
                        f"batch rejected: net delete of {-mult} copies of "
                        f"{tup!r} from {relation_name!r} exceeds the stored "
                        f"multiplicity {relation.multiplicity(tup)}; "
                        "no part of the batch was applied"
                    )

    def _apply_group(self, batch: UpdateBatch, relation_name: str) -> None:
        group: Delta = dict(batch.delta_for(relation_name))
        if not group:
            return
        relation = self.database.relation(relation_name)
        self.processor._atom_for(relation_name)
        schema: Schema = relation.schema
        partitions = self.plan.partitions.partitions_of(relation_name)

        # (1) pre-state per partition key, and the induced light routing:
        # a key's delta routes to the light part when the key is new to the
        # base relation (new keys start light, Definition 11) or currently
        # classified light.  Heavy keys absorb the delta in the base/heavy
        # side only; the deferred rebalance check may move them later.
        routed: List[Tuple[Partition, Delta]] = []
        for partition in partitions:
            light_delta: Delta = {}
            by_key = batch.grouped_by_key(relation_name, partition.key_of)
            for key, key_group in by_key.items():
                was_in_base = partition.base.contains_key(partition.keys, key)
                if (not was_in_base) or partition.is_light_key(key):
                    light_delta.update(key_group)
            routed.append((partition, light_delta))

        # (2) the shared base relation absorbs the whole group exactly once
        for tup, mult in group.items():
            relation.apply_delta(tup, mult)
        self.processor._capture_group(relation_name, group)

        # (3) one grouped traversal per strategy tree and indicator All tree
        for tree in self._trees_for(relation_name):
            propagate_delta(tree, relation_name, schema, group)
        triples = self._triples_for(relation_name)
        for triple in triples:
            propagate_delta(triple.all_tree, relation_name, schema, group)

        # (4) grouped light-part routing
        updated_light: Set[int] = set()
        for partition, light_delta in routed:
            if not light_delta or id(partition.light) in updated_light:
                continue
            updated_light.add(id(partition.light))
            for tup, mult in light_delta.items():
                partition.light.apply_delta(tup, mult)
            light_name = partition.light.name
            for tree in self._trees_for(light_name):
                propagate_delta(tree, light_name, schema, light_delta)
            for tree in self._light_indicator_trees_for(light_name):
                propagate_delta(tree, light_name, schema, light_delta)

        # (5) heavy-indicator refresh, once per distinct triple key
        for triple in triples:
            keys = {
                self.processor._triple_key(triple, relation_name, tup)
                for tup in group
            }
            for key in keys:
                self._refresh_indicator(triple, key)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _refresh_indicator(self, triple: IndicatorTriple, key: ValueTuple) -> None:
        change = triple.refresh_key(key)
        if change == 0:
            return
        source = triple.exists_heavy.name
        for tree in self._trees_for(source):
            propagate_delta(tree, source, triple.keys, {key: change})
