"""Single-tuple update processing (``UpdateTrees``, Figure 19).

For an update ``δR = {x → m}`` the maintenance layer:

1. captures, for every partition of ``R``, whether the partition key of ``x``
   existed in ``R`` before the update (new keys start light — this keeps the
   domain-partition invariant of Definition 11);
2. applies ``δR`` to the shared base relation exactly once;
3. propagates ``δR`` through every skew-aware strategy tree and every
   indicator ``All`` tree that references ``R``;
4. routes the update into the light parts ``R^S`` whose key is (or becomes)
   light, propagating the induced change through the trees that reference the
   light part (skew trees and indicator ``L`` trees);
5. refreshes the heavy-indicator supports ``∃H`` of the affected triples and
   propagates any support change through the skew trees.

Rebalancing (threshold maintenance) is handled separately by
:mod:`repro.ivm.rebalance`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.data.database import Database
from repro.data.partition import Partition
from repro.data.schema import Schema, ValueTuple
from repro.data.update import Update
from repro.exceptions import UnknownRelationError, UnsupportedQueryError
from repro.ivm.delta import Delta, propagate_delta
from repro.query.atom import Atom
from repro.views.indicators import IndicatorTriple
from repro.views.skew import SkewAwarePlan


class UpdateProcessor:
    """Applies single-tuple updates to a materialized skew-aware plan."""

    def __init__(self, plan: SkewAwarePlan, database: Database) -> None:
        self.plan = plan
        self.database = database
        self.query = plan.query
        self._atoms_by_relation: Dict[str, Atom] = {}
        for atom in self.query.atoms:
            if atom.relation in self._atoms_by_relation:
                raise UnsupportedQueryError(
                    "queries with repeating relation symbols are not supported by "
                    "the dynamic engine (paper footnote 2)"
                )
            self._atoms_by_relation[atom.relation] = atom

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _atom_for(self, relation_name: str) -> Atom:
        try:
            return self._atoms_by_relation[relation_name]
        except KeyError as exc:
            raise UnknownRelationError(
                f"relation {relation_name!r} does not occur in query {self.query}"
            ) from exc

    def _triple_key(
        self, triple: IndicatorTriple, relation_name: str, tup: ValueTuple
    ) -> ValueTuple:
        """Project an update tuple onto the triple's key variables."""
        atom = self._atom_for(relation_name)
        return tuple(tup[atom.variables.index(v)] for v in triple.keys)

    def _propagate_to_trees(
        self, source_name: str, schema: Schema, delta: Delta
    ) -> None:
        """Propagate a leaf change through every skew-aware strategy tree."""
        for tree in self.plan.trees_referencing(source_name):
            propagate_delta(tree, source_name, schema, delta)

    def _propagate_to_light_indicator_trees(
        self, source_name: str, schema: Schema, delta: Delta
    ) -> None:
        for triple in self.plan.indicator_triples:
            if source_name in triple.light_tree.source_names():
                propagate_delta(triple.light_tree, source_name, schema, delta)

    def _refresh_indicator(
        self, triple: IndicatorTriple, key: ValueTuple
    ) -> None:
        """Refresh ``∃H`` at ``key`` and propagate any support change."""
        change = triple.refresh_key(key)
        if change == 0:
            return
        self._propagate_to_trees(
            triple.exists_heavy.name, triple.keys, {key: change}
        )

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def apply_update(self, update: Update) -> None:
        """Process one single-tuple update (Figure 19, without rebalancing)."""
        relation = self.database.relation(update.relation)
        self._atom_for(update.relation)
        delta: Delta = {tuple(update.tuple): update.multiplicity}
        schema: Schema = relation.schema

        partitions = self.plan.partitions.partitions_of(relation.name)
        pre_state: Dict[int, Tuple[ValueTuple, bool]] = {}
        for partition in partitions:
            key = partition.key_of(update.tuple)
            pre_state[id(partition)] = (key, partition.base.contains_key(partition.keys, key))

        # (2) the shared base relation absorbs the update exactly once
        relation.apply_delta(update.tuple, update.multiplicity)

        # (3) strategy trees and indicator All trees referencing the base relation
        self._propagate_to_trees(relation.name, schema, delta)
        affected_triples = self.plan.triples_referencing(update.relation)
        for triple in affected_triples:
            propagate_delta(triple.all_tree, relation.name, schema, delta)

        # (4) light-part routing
        updated_light: Set[int] = set()
        for partition in partitions:
            key, was_in_base = pre_state[id(partition)]
            route_to_light = (not was_in_base) or partition.is_light_key(key)
            if not route_to_light:
                continue
            if id(partition.light) in updated_light:
                continue
            updated_light.add(id(partition.light))
            partition.light.apply_delta(update.tuple, update.multiplicity)
            light_name = partition.light.name
            self._propagate_to_trees(light_name, schema, delta)
            self._propagate_to_light_indicator_trees(light_name, schema, delta)

        # (5) heavy-indicator support refresh
        for triple in affected_triples:
            key = self._triple_key(triple, update.relation, update.tuple)
            self._refresh_indicator(triple, key)

    # ------------------------------------------------------------------
    # batched light-part moves (used by minor rebalancing)
    # ------------------------------------------------------------------
    def move_partition_key(
        self,
        partition: Partition,
        key: ValueTuple,
        to_light: bool,
        witness_tuple: ValueTuple,
        relation_name: str,
    ) -> None:
        """Move all tuples of one partition key into or out of the light part.

        The deltas applied to the light part are propagated through the skew
        trees and the indicator ``L`` trees, after which the heavy-indicator
        supports of the triples fed by this light part are refreshed at the
        corresponding key (Figure 21).
        """
        if to_light:
            deltas = partition.move_key_to_light(key)
        else:
            deltas = partition.move_key_to_heavy(key)
        if not deltas:
            return
        schema = partition.base.schema
        light_name = partition.light.name
        self._propagate_to_trees(light_name, schema, deltas)
        self._propagate_to_light_indicator_trees(light_name, schema, deltas)
        for triple in self.plan.indicator_triples:
            if light_name in triple.light_tree.source_names():
                triple_key = self._triple_key(triple, relation_name, witness_tuple)
                self._refresh_indicator(triple, triple_key)
