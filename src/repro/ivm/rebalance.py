"""Rebalancing and the ``OnUpdate`` trigger (Section 6.2, Figures 20–22).

The dynamic engine keeps a *threshold base* ``M`` with the size invariant
``⌊M/4⌋ ≤ N < M`` (Definition 51); the heavy/light threshold is ``M^ε``.

* **Major rebalancing** fires when the invariant breaks (the database doubled
  or shrank enough): ``M`` is doubled or roughly halved, every partition is
  strictly repartitioned with the new threshold, and every view is
  recomputed.  Amortized over Ω(M) updates this costs ``O(N^{(w−1)ε})`` per
  update (Proposition 25 and Appendix F.4).
* **Minor rebalancing** fires when one partition key drifts across the loose
  thresholds of Definition 11: its tuples are moved into or out of the light
  part and the affected views and indicators are refreshed (Proposition 26).

The batched ingestion path (:meth:`MaintenanceDriver.on_batch`) defers both
checks to once per batch: after a whole
:class:`~repro.data.update.UpdateBatch` has been absorbed, the size
invariant is restored (doubling/halving ``M`` as often as needed, since one
batch can overshoot more than one doubling) and each partition key touched
by the batch gets exactly one minor-rebalance check.  Between the batch's
internal updates the loose invariants may transiently be violated; they are
re-established before the call returns, which is all the amortized analysis
needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.data.database import Database
from repro.data.partition import Partition
from repro.data.schema import ValueTuple
from repro.data.update import Update, UpdateBatch, as_batch
from repro.engine.materialize import materialize_plan
from repro.ivm.maintenance import BatchUpdateProcessor, UpdateProcessor
from repro.views.skew import SkewAwarePlan


@dataclass
class RebalanceStats:
    """Counters describing rebalancing activity (reported by benchmarks)."""

    updates: int = 0
    batches: int = 0
    minor_rebalances: int = 0
    major_rebalances: int = 0
    moved_to_light: int = 0
    moved_to_heavy: int = 0
    retunes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "updates": self.updates,
            "batches": self.batches,
            "minor_rebalances": self.minor_rebalances,
            "major_rebalances": self.major_rebalances,
            "moved_to_light": self.moved_to_light,
            "moved_to_heavy": self.moved_to_heavy,
            "retunes": self.retunes,
        }

    def add(self, other: "RebalanceStats") -> "RebalanceStats":
        """Accumulate another driver's counters into this one (in place).

        Sharded execution keeps one :class:`MaintenanceDriver` per shard so
        minor/major rebalances stay shard-local; the facade reports a fleet
        view by folding the per-shard counters together with this method.
        Returns ``self`` for chaining.
        """
        self.updates += other.updates
        self.batches += other.batches
        self.minor_rebalances += other.minor_rebalances
        self.major_rebalances += other.major_rebalances
        self.moved_to_light += other.moved_to_light
        self.moved_to_heavy += other.moved_to_heavy
        self.retunes += other.retunes
        return self

    @classmethod
    def merged(cls, stats: Iterable["RebalanceStats"]) -> "RebalanceStats":
        """Fold any number of per-shard counters into one aggregate."""
        total = cls()
        for entry in stats:
            total.add(entry)
        return total

    @classmethod
    def from_dict(cls, raw: Dict[str, int]) -> "RebalanceStats":
        """Rebuild counters from :meth:`as_dict` (crosses process pipes)."""
        return cls(**raw)


class MaintenanceDriver:
    """The ``OnUpdate`` trigger: update processing plus rebalancing."""

    def __init__(
        self,
        plan: SkewAwarePlan,
        database: Database,
        epsilon: float,
        enable_rebalancing: bool = True,
        telemetry=None,
    ) -> None:
        self.plan = plan
        self.database = database
        self.epsilon = epsilon
        self.enable_rebalancing = enable_rebalancing
        self.processor = UpdateProcessor(plan, database)
        self.batch_processor = BatchUpdateProcessor(plan, database, self.processor)
        self.stats = RebalanceStats()
        # Optional repro.adaptive.WorkloadTelemetry: when present, every
        # ingestion event records its source-update count and wall-clock
        # cost, feeding the adaptive ε controller.
        self.telemetry = telemetry
        # Monotonically increasing engine version: one tick per ingestion
        # event (a single-tuple update, a consolidated batch, or a retune).
        # Snapshots (repro.snapshot) are stamped with this counter, so "the
        # engine at version v" means "after the first v ingestion events".
        self.version = 0
        # Definition 51: the initial threshold base is 2N + 1.  This field
        # is the single source of truth for threshold derivation — every
        # code path that needs the heavy/light threshold must read
        # :attr:`threshold` (or this base) rather than recomputing a power
        # of the live database size, which silently drifts from the
        # Definition 51 invariant between rebalances.
        self.threshold_base = 2 * database.size + 1

    # ------------------------------------------------------------------
    # result-delta capture (push-based serving)
    # ------------------------------------------------------------------
    def set_delta_capture(self, enabled: bool) -> None:
        """Start (or stop) accumulating per-commit result-level deltas.

        Forwarded to the shared :class:`UpdateProcessor` capture hook —
        rebalances and retunes driven by this class never contribute (they
        reorganize views without changing the query result), so the drained
        delta reflects ingestion events only.
        """
        self.processor.set_delta_capture(enabled)

    def drain_result_delta(self):
        """Return and clear the net result delta accumulated since last drain."""
        return self.processor.drain_result_delta()

    def add_delta_listener(self, listener) -> None:
        """Register a result-delta listener (ring-annotated aggregate views).

        Forwarded to the shared :class:`UpdateProcessor`, which persists
        across retunes and rebalances — those reorganize views without
        changing the result, so maintained aggregates stay exact through
        them without re-initialization.
        """
        self.processor.add_delta_listener(listener)

    def remove_delta_listener(self, listener) -> None:
        """Unregister a listener added by :meth:`add_delta_listener`."""
        self.processor.remove_delta_listener(listener)

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The current heavy/light threshold ``M^ε``."""
        return self.threshold_base ** self.epsilon

    def _size_invariant_holds(self) -> bool:
        size = self.database.size
        return (self.threshold_base // 4) <= size < self.threshold_base

    # ------------------------------------------------------------------
    def retune(self, epsilon: float) -> None:
        """Switch the live trade-off knob to ``epsilon`` (one major rebalance).

        Re-anchors the threshold base at ``M = 2N + 1`` — exactly what a
        fresh :meth:`~repro.core.api.HierarchicalEngine.load` at the current
        database would choose — drops the base relations' secondary indexes
        (so index iteration order, which seeds the light parts and view
        contents, matches a fresh build instead of reflecting pre-retune
        churn), strictly repartitions every partition at the new ``M^ε``,
        and recomputes every view.  The result: a retuned engine is
        indistinguishable — result *and* enumeration order — from a new
        engine constructed at ``epsilon`` over the current database.  Open
        snapshots keep reading their capture-time state through the
        copy-on-write tracker, exactly as across any major rebalance.

        Counted in ``stats.retunes`` (not in ``major_rebalances``, which
        tracks size-invariant-triggered rebuilds) and ticks the version so
        snapshot stamps order retunes with the ingestion events around them.
        Works with ``enable_rebalancing=False`` too — the new base simply
        stays put afterwards.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon
        self.threshold_base = 2 * self.database.size + 1
        self.stats.retunes += 1
        self.version += 1
        self.rematerialize()

    def rematerialize(self) -> None:
        """Normalize the live state: fresh index order, views rebuilt.

        Drops every base relation's secondary indexes and recomputes every
        view at the *current* threshold (no re-anchoring, no version tick).
        Afterwards the engine's full state — index iteration order, light
        parts, view contents, and hence enumeration order — is a pure
        function of (base-relation insertion order, ``threshold_base``,
        ε), with no residue of pre-call churn.  :meth:`retune` uses this
        after re-anchoring ``M``; the durability layer uses it as the
        checkpoint barrier that makes WAL replay byte-exact
        (:class:`repro.durability.DurabilityManager`).
        """
        for relation in self.database:
            relation.invalidate_indexes()
        materialize_plan(self.plan, self.threshold)

    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> None:
        """Process one update and rebalance if necessary (Figure 22)."""
        if self.telemetry is None:
            self._ingest_update(update)
            return
        started = time.perf_counter()
        self._ingest_update(update)
        self.telemetry.record_update(1, time.perf_counter() - started)

    def _ingest_update(self, update: Update) -> None:
        self.processor.apply_update(update)
        self.stats.updates += 1
        self.version += 1
        if not self.enable_rebalancing:
            return
        size = self.database.size
        if size >= self.threshold_base:
            self.threshold_base = 2 * self.threshold_base
            self._major_rebalance()
            return
        if size < (self.threshold_base // 4):
            self.threshold_base = max(1, self.threshold_base // 2 - 1)
            self._major_rebalance()
            return
        self._minor_rebalance(update)

    def apply_stream(self, updates) -> None:
        """Process a sequence of updates in order."""
        for update in updates:
            self.on_update(update)

    def on_batch(
        self,
        batch: Union[UpdateBatch, Iterable[Update]],
        validated: bool = False,
    ) -> None:
        """Process one consolidated batch with a single deferred rebalance check.

        The whole batch is absorbed through
        :class:`~repro.ivm.maintenance.BatchUpdateProcessor` first; the size
        invariant and the per-key loose thresholds are then restored in one
        pass over the touched keys instead of once per source update.
        ``validated=True`` forwards the sharded engine's pre-validation so
        the batch processor skips its own redundant pass.
        """
        batch = as_batch(batch)
        if self.telemetry is None:
            self._ingest_batch(batch, validated)
            return
        started = time.perf_counter()
        self._ingest_batch(batch, validated)
        self.telemetry.record_update(
            batch.source_count, time.perf_counter() - started
        )

    def _ingest_batch(self, batch: UpdateBatch, validated: bool) -> None:
        self.batch_processor.apply_batch(batch, validated=validated)
        self.stats.updates += batch.source_count
        self.stats.batches += 1
        self.version += 1
        if not self.enable_rebalancing:
            return
        size = self.database.size
        resized = False
        while size >= self.threshold_base:
            self.threshold_base = 2 * self.threshold_base
            resized = True
        while size < (self.threshold_base // 4):
            halved = max(1, self.threshold_base // 2 - 1)
            if halved == self.threshold_base:
                break
            self.threshold_base = halved
            resized = True
        if resized:
            self._major_rebalance()
            return
        threshold = self.threshold
        for relation_name in batch.relations():
            for partition in self.plan.partitions.partitions_of(relation_name):
                witnesses: Dict[ValueTuple, ValueTuple] = {}
                for tup in batch.delta_for(relation_name):
                    witnesses.setdefault(partition.key_of(tup), tup)
                for key, witness in witnesses.items():
                    self._check_partition_key(
                        partition, key, witness, relation_name, threshold
                    )

    # ------------------------------------------------------------------
    def _major_rebalance(self) -> None:
        """Figure 20: strictly repartition and recompute every view."""
        self.stats.major_rebalances += 1
        materialize_plan(self.plan, self.threshold)

    def _minor_rebalance(self, update: Update) -> None:
        """Figure 21/22: move one partition key across the heavy/light border."""
        relation = self.database.relation(update.relation)
        threshold = self.threshold
        for partition in self.plan.partitions.partitions_of(relation.name):
            self._check_partition_key(
                partition, None, update.tuple, update.relation, threshold
            )

    def _check_partition_key(
        self,
        partition: Partition,
        key: Optional[ValueTuple],
        witness: ValueTuple,
        relation_name: str,
        threshold: float,
    ) -> None:
        """Move one key across the heavy/light border if it drifted.

        ``key`` may be ``None``: degrees are then probed tuple-addressed via
        the witness tuple (the columnar backend answers those from the row
        table) and the key tuple is only built when a move actually fires.
        """
        if key is None:
            light_degree = partition.light.degree_of(partition.keys, witness)
            base_degree = partition.base.degree_of(partition.keys, witness)
        else:
            light_degree = partition.light_degree(key)
            base_degree = partition.base_degree(key)
        if light_degree == 0 and 0 < base_degree < 0.5 * threshold:
            self.stats.minor_rebalances += 1
            self.stats.moved_to_light += base_degree
            if key is None:
                key = partition.key_of(witness)
            self.processor.move_partition_key(
                partition, key, True, witness, relation_name
            )
        elif light_degree >= 1.5 * threshold:
            self.stats.minor_rebalances += 1
            self.stats.moved_to_heavy += light_degree
            if key is None:
                key = partition.key_of(witness)
            self.processor.move_partition_key(
                partition, key, False, witness, relation_name
            )

    # ------------------------------------------------------------------
    def check_partitions(self) -> None:
        """Assert the loose partition invariants (used by property tests)."""
        for partition in self.plan.partitions:
            partition.check_loose(self.threshold)
