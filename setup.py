"""Packaging for the src/-layout ``repro`` package.

``pip install -e .`` makes ``import repro`` work without the manual
``PYTHONPATH=src`` dance documented in the README (both invocations are
supported; the test and benchmark Makefile targets use PYTHONPATH so they
run from a fresh checkout).
"""

from setuptools import find_packages, setup

setup(
    name="repro-ivm-epsilon",
    version="1.0.0",
    description=(
        "Reproduction of 'Trade-offs in Static and Dynamic Evaluation of "
        "Hierarchical Queries' (PODS 2020): the IVM^epsilon engine, "
        "baselines, workloads, and benchmarks"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
)
