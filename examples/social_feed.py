"""A social "feed" maintained under a stream of new posts.

``Feed(U, P) = Follows(U, C), Posts(C, P)`` pairs every user with every post
published on a channel they follow.  Channel popularity is Zipf-distributed:
a few channels have very many followers and very many posts (heavy), most
have a handful (light).  Maintaining the full feed eagerly is quadratic in
the hot channels; the IVM^ε engine instead materializes the light part and
answers the heavy part on the fly, giving sublinear update time *and*
sublinear enumeration delay (the paper's headline trade-off for
δ₁-hierarchical queries, Figure 3).

Run with::

    python examples/social_feed.py
"""

from repro import HierarchicalEngine
from repro.bench import measure_enumeration_delay, measure_update_stream, print_table
from repro.workloads import SOCIAL_QUERY, social_database, social_post_stream


def main() -> None:
    database = social_database(follows=4000, posts=4000, users=1000, channels=250, skew=1.3, seed=3)
    print("Feed query:", SOCIAL_QUERY)
    print(f"database size N = {database.size}")

    posts = social_post_stream(500, channels=250, skew=1.3, seed=4)
    rows = []
    for epsilon in (0.0, 0.5, 1.0):
        engine = HierarchicalEngine(SOCIAL_QUERY, epsilon=epsilon)
        engine.load(database)
        update_measurement = measure_update_stream(engine, posts)
        delay_measurement, _ = measure_enumeration_delay(engine, limit=3000)
        stats = engine.rebalance_stats.as_dict()
        rows.append(
            {
                "epsilon": epsilon,
                "preprocess_s": engine.preprocessing_seconds,
                "view_tuples": engine.view_size(),
                "update_mean_s": update_measurement.mean,
                "delay_max_s": delay_measurement.maximum,
                "minor_rebalances": stats["minor_rebalances"],
                "major_rebalances": stats["major_rebalances"],
            }
        )
    print_table(rows, "social feed: the update/delay trade-off as epsilon varies")

    print(
        "Reading the table: epsilon = 1 materializes the whole feed "
        "(fast enumeration, slow updates on hot channels); epsilon = 0 keeps "
        "almost nothing materialized (cheap updates, slow enumeration); "
        "epsilon = 0.5 sits at the weakly Pareto-optimal point of Figure 3."
    )


if __name__ == "__main__":
    main()
