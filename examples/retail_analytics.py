"""Retail analytics under a stream of orders and returns.

The query joins ``Orders(customer, product)`` with ``Returns(product,
region)`` on the shared product key: "which customers bought products that
were returned in which regions?".  Product popularity follows a Zipf law, so
a handful of hot products dominate the join — exactly the skew the paper's
heavy/light partitioning targets.

The example compares the IVM^ε engine (ε = 0.5) against classical first-order
IVM and naive recomputation on the same update stream, then reports per-
engine preprocessing, average update latency, and enumeration delay.

Run with::

    python examples/retail_analytics.py
"""

from repro import HierarchicalEngine
from repro.baselines import FirstOrderIVMEngine, NaiveRecomputeEngine
from repro.bench import compare_engines, print_table
from repro.workloads import RETAIL_QUERY, retail_database, retail_update_stream


def main() -> None:
    print("Retail analytics:", RETAIL_QUERY)
    database = retail_database(orders=3000, returns=1500, products=300, skew=1.2, seed=1)
    print(f"database size N = {database.size} "
          f"(|Orders| = {len(database.relation('Orders'))}, "
          f"|Returns| = {len(database.relation('Returns'))})")

    updates = retail_update_stream(400, products=300, skew=1.2, seed=2)
    print(f"update stream   = {len(updates)} single-tuple inserts/deletes")

    rows = compare_engines(
        RETAIL_QUERY,
        database,
        {
            "IVM^eps (eps=0.5)": lambda: HierarchicalEngine(RETAIL_QUERY, epsilon=0.5),
            "IVM^eps (eps=1.0)": lambda: HierarchicalEngine(RETAIL_QUERY, epsilon=1.0),
            "first-order IVM": lambda: FirstOrderIVMEngine(RETAIL_QUERY),
            "recompute": lambda: NaiveRecomputeEngine(RETAIL_QUERY),
        },
        updates_factory=lambda: updates,
        delay_limit=2000,
    )
    print_table(rows, "orders/returns workload: preprocessing, update, delay")

    # A closer look at the skew-aware engine.
    engine = HierarchicalEngine(RETAIL_QUERY, epsilon=0.5)
    engine.load(database)
    engine.apply_stream(updates)
    print("IVM^eps maintenance statistics:", engine.rebalance_stats.as_dict())
    result = engine.result()
    print(f"distinct (customer, region) pairs: {len(result)}")
    top = sorted(result.items(), key=lambda item: -item[1])[:5]
    print("five most frequent pairs (customer, region) -> multiplicity:")
    for pair, multiplicity in top:
        print(f"  {pair} -> {multiplicity}")


if __name__ == "__main__":
    main()
