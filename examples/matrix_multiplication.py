"""Example 28 as an application: Boolean matrix multiplication.

``Q(A, C) = R(A, B), S(B, C)`` over relations encoding two Boolean ``n × n``
matrices computes their product: ``(a, c)`` is an answer iff some ``b``
links them, and its multiplicity is the number of witnesses — the integer
matrix product.  The paper highlights ε = ½: preprocessing ``O(N^{3/2})``
and delay ``O(N^{1/2})`` per output tuple, with ``N = n²``.

The script sweeps ε, verifies the enumerated support against ``numpy``'s
matrix product, and prints the measured preprocessing/delay trade-off.

Run with::

    python examples/matrix_multiplication.py
"""

import numpy as np

from repro import StaticEngine
from repro.bench import measure_enumeration_delay, print_table
from repro.workloads import expected_product_support, matmul_database


def main() -> None:
    n = 60
    database, left, right = matmul_database(n, density=0.15, seed=11)
    print(f"multiplying two Boolean {n}x{n} matrices "
          f"(|R| = {len(database.relation('R'))}, |S| = {len(database.relation('S'))}, "
          f"N = {database.size})")

    expected = expected_product_support(left, right)
    rows = []
    for epsilon in (0.0, 0.25, 0.5, 0.75, 1.0):
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=epsilon)
        engine.load(database)
        result = engine.result()
        assert set(result) == expected, "enumerated support differs from numpy!"
        delay, produced = measure_enumeration_delay(engine, limit=4000)
        rows.append(
            {
                "epsilon": epsilon,
                "preprocess_s": engine.preprocessing_seconds,
                "view_tuples": engine.view_size(),
                "delay_mean_s": delay.mean,
                "delay_max_s": delay.maximum,
                "output_tuples": produced,
            }
        )
    print_table(rows, "Example 28: preprocessing vs delay as epsilon varies")

    # sanity: multiplicities are the integer matrix product
    engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5).load(database)
    product = left @ right
    mismatches = sum(
        1 for (a, c), mult in engine.result().items() if product[a, c] != mult
    )
    print(f"multiplicity check against numpy integer product: "
          f"{'all match' if mismatches == 0 else f'{mismatches} mismatches'}")


if __name__ == "__main__":
    main()
