"""Quickstart: static and dynamic evaluation of a hierarchical query.

This walks through the paper's two running examples:

* Example 28 — ``Q(A, C) = R(A, B), S(B, C)`` (δ₁-hierarchical, not
  free-connex, static width 2);
* Example 29 — ``Q(A) = R(A, B), S(B)`` (δ₁-hierarchical and free-connex).

Run with::

    python examples/quickstart.py
"""

from repro import Database, DynamicEngine, HierarchicalEngine, StaticEngine, Update, UpdateStream


def static_evaluation() -> None:
    print("=" * 70)
    print("Static evaluation of Q(A, C) = R(A, B), S(B, C)   (Example 28)")
    print("=" * 70)
    database = Database.from_dict(
        {
            "R": (("A", "B"), [(1, 10), (2, 10), (2, 20), (3, 30)]),
            "S": (("B", "C"), [(10, 7), (20, 8), (20, 9)]),
        }
    )
    # ε trades preprocessing time against enumeration delay (Theorem 2):
    #   preprocessing O(N^{1+ε}),   delay O(N^{1-ε})   since the width w = 2.
    for epsilon in (0.0, 0.5, 1.0):
        engine = StaticEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=epsilon)
        engine.load(database)
        print(f"\nepsilon = {epsilon}")
        print(f"  query classes     : {', '.join(engine.classification.classes)}")
        print(f"  static width  w   : {engine.static_width}")
        print(f"  expected exponents: {engine.expected_exponents()}")
        print(f"  materialized view tuples: {engine.view_size()}")
        print(f"  result            : {dict(sorted(engine.result().items()))}")


def dynamic_evaluation() -> None:
    print()
    print("=" * 70)
    print("Dynamic evaluation of Q(A) = R(A, B), S(B)        (Example 29)")
    print("=" * 70)
    database = Database.from_dict(
        {
            "R": (("A", "B"), [(1, 10), (2, 20)]),
            "S": (("B",), [(10,)]),
        }
    )
    engine = DynamicEngine("Q(A) = R(A, B), S(B)", epsilon=0.5)
    engine.load(database)
    print(f"initial result: {engine.result()}")

    print("insert S(20)   -> customer 2 becomes visible")
    engine.insert("S", (20,))
    print(f"result        : {engine.result()}")

    print("insert R(3, 20), R(3, 10) -> multiplicity of (3,) is 2")
    engine.insert("R", (3, 20))
    engine.insert("R", (3, 10))
    print(f"result        : {engine.result()}")

    print("delete S(10)   -> pairs through B = 10 disappear")
    engine.delete("S", (10,))
    print(f"result        : {engine.result()}")

    stats = engine.rebalance_stats.as_dict()
    print(f"maintenance statistics: {stats}")


def batched_updates() -> None:
    print()
    print("=" * 70)
    print("Batched ingestion: apply_batch consolidates and amortizes")
    print("=" * 70)
    database = Database.from_dict(
        {
            "R": (("A", "B"), [(1, 10), (2, 20)]),
            "S": (("B",), [(10,)]),
        }
    )
    engine = DynamicEngine("Q(A) = R(A, B), S(B)", epsilon=0.5)
    engine.load(database)
    stream = UpdateStream(
        [
            Update("S", (20,), +1),      # customer 2 becomes visible
            Update("R", (3, 20), +1),
            Update("R", (3, 20), -1),    # ...cancelled within the batch
            Update("R", (4, 10), +1),
        ]
    )
    batch = stream.consolidated()
    print(f"stream of {len(stream)} updates -> {len(batch)} net deltas")
    engine.apply_batch(batch)
    print(f"result after batch : {engine.result()}")
    print(f"maintenance stats  : {engine.rebalance_stats.as_dict()}")
    # long streams are chunked: engine.apply_stream(stream, batch_size=500)


def inspect_plan() -> None:
    print()
    print("=" * 70)
    print("Inspecting the skew-aware plan (explain output)")
    print("=" * 70)
    database = Database.from_dict(
        {
            "R": (("A", "B"), [(1, 10), (2, 10)]),
            "S": (("B", "C"), [(10, 7)]),
        }
    )
    engine = HierarchicalEngine("Q(A, C) = R(A, B), S(B, C)", epsilon=0.5)
    engine.load(database)
    print(engine.explain())


if __name__ == "__main__":
    static_evaluation()
    dynamic_evaluation()
    batched_updates()
    inspect_plan()
