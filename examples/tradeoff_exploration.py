"""Empirically exploring the preprocessing/update/delay trade-off (Figure 1).

For the δ₁-hierarchical query ``Q(A, C) = R(A, B), S(B, C)`` (static width 2,
dynamic width 1) Theorems 2 and 4 promise, for every ε ∈ [0, 1]:

* preprocessing time  O(N^{1+ε}),
* amortized update time O(N^{ε}),
* enumeration delay   O(N^{1−ε}).

This script measures all three at several database sizes, fits the growth
exponents in log-log space, and prints them next to the theoretical values —
the empirical counterpart of the left plot of Figure 1.  Sizes are kept small
so the script finishes in well under a minute; increase ``SIZES`` for tighter
fits.

Run with::

    python examples/tradeoff_exploration.py
"""

from repro.bench import print_table, scaling_experiment
from repro.workloads import mixed_stream, path_query_database

QUERY = "Q(A, C) = R(A, B), S(B, C)"
SIZES = [300, 600, 1200, 2400]
EPSILONS = [0.0, 0.5, 1.0]


def main() -> None:
    print("Trade-off exploration for", QUERY)
    rows = []
    for epsilon in EPSILONS:
        outcome = scaling_experiment(
            QUERY,
            lambda size: path_query_database(size, skew=1.1, seed=17),
            sizes=SIZES,
            epsilon=epsilon,
            updates_factory=lambda db, size: mixed_stream(db, 150, seed=18, domain=size),
            delay_limit=1500,
        )
        fits, theory = outcome["fits"], outcome["theory"]
        rows.append(
            {
                "epsilon": epsilon,
                "preproc_fit": fits["preprocessing"].exponent,
                "preproc_theory": theory["preprocessing"],
                "update_fit": fits["update"].exponent,
                "update_theory": theory["update"],
                "delay_fit": fits["delay"].exponent,
                "delay_theory": theory["delay"],
            }
        )
        detail = [point.as_row() for point in outcome["points"]]
        print_table(detail, f"raw measurements for epsilon = {epsilon}")
    print_table(rows, "fitted vs theoretical exponents (Figure 1, left)")
    print(
        "The fitted exponents are noisy at these small sizes, but the ordering "
        "matches the theory: preprocessing grows fastest at epsilon = 1, delay "
        "shrinks as epsilon grows, and updates get more expensive with epsilon."
    )


if __name__ == "__main__":
    main()
